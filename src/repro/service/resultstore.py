"""Content-addressed durable result store with crash-safe leases.

At millions-of-users scale, repeat traffic dominates: the same
(mix, policy, seed, window) query arrives again and again, and the paper's
policies are deterministic functions of that tuple. The store turns every
repeat into a disk hit instead of a simulation.

**Addressing.** Entries are keyed by the request-identity digest of
:mod:`repro.service.identity` and written as JSON document artifacts
(embedded ``"artifact"`` metadata block, CRC over the canonical document —
see :func:`repro.storage.artifact.embed_json_artifact`), one file per
result at ``<root>/shard-NN/<digest>.json``. The shard directory is
derived from the digest, so each shard of the front-door *owns* a disjoint
segment: two shards never write the same file, and an fsck of one segment
never races another shard's writes.

**Recover, don't abort.** A read that fails validation — bitrot, torn
frame, a digest/filename mismatch (mislabeled content) — is treated as a
*miss*: the damaged file is quarantined to ``*.corrupt`` and the caller
re-simulates. A write that fails after the storage layer's bounded retries
is absorbed and counted (``put_errors``): the store is an optimization,
and losing one entry costs one re-simulation while aborting would cost the
service. Corrupt or stale bytes are **never** served.

**Leases.** Cross-process coalescing uses one lease file per digest at
``<root>/leases/<digest>.lease``, created with ``O_CREAT | O_EXCL`` and
stamped with the holder's PID in a single write. A second front-door that
loses the race waits for the winner's result instead of re-simulating.
Crash safety mirrors the journal-lock protocol: a lease whose stamped
holder PID is dead is *broken* (unlinked) and re-acquired — at runtime by
whoever finds it, and wholesale at service startup via
:meth:`ResultStore.break_stale_leases`, so a crashed service never wedges
its successor. An unparseable stamp is treated as live at runtime (the
racing writer stamps its PID an instant after creating the file) but as
stale during the startup sweep, where the service has not begun admitting
work yet and an orphaned empty lease would otherwise block its digest
forever.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path
from typing import Dict, Optional, Union

from repro.service.identity import shard_of
from repro.storage import (
    ArtifactError,
    StorageError,
    atomic_write_bytes,
    embed_json_artifact,
    load_json_artifact,
    pid_alive,
    quarantine,
)

log = logging.getLogger("repro.resultstore")

#: Storage-artifact identity of one stored result document.
RESULT_FORMAT = "sim-result"
RESULT_VERSION = 1

#: Storage-artifact identity of one divergence-quarantine evidence doc.
DIVERGENCE_FORMAT = "sim-divergence"
DIVERGENCE_VERSION = 1

#: Lease-file suffix (``repro fsck`` knows it; see storage/fsck.py).
LEASE_SUFFIX = ".lease"

#: Suffix of quarantined divergent entries (evidence, never served).
DIVERGENT_SUFFIX = ".divergent"

#: Integrity lifecycle of a live entry. ``unverified`` — stored as
#: produced, never independently re-executed; ``verified`` — a shadow
#: re-execution on another shard reproduced the same summary digest.
#: ``divergent`` never appears on a live entry: divergence *evicts* the
#: entry into a ``*.divergent`` evidence document (both conflicting
#: payloads preserved), and the digest misses until re-simulated.
INTEGRITY_UNVERIFIED = "unverified"
INTEGRITY_VERIFIED = "verified"
INTEGRITY_STATUSES = (INTEGRITY_UNVERIFIED, INTEGRITY_VERIFIED)

#: Stable counter names reported by :meth:`ResultStore.stats`.
STORE_COUNTERS = (
    "hits",
    "misses",
    "corrupt_misses",
    "puts",
    "put_errors",
    "verified_marks",
    "divergent_quarantines",
    "integrity_evictions",
    "lease_breaks",
    "stale_leases_broken",
)


class ResultStore:
    """Durable, shard-segmented, content-addressed cache of sim results."""

    def __init__(self, root: Union[str, Path], shards: int = 1) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.root = Path(root)
        self.shards = shards
        self.counters: Dict[str, int] = {name: 0 for name in STORE_COUNTERS}

    # -- layout --------------------------------------------------------------
    def segment(self, digest: str) -> Path:
        """The shard-owned directory holding ``digest``'s entry."""
        return self.root / f"shard-{shard_of(digest, self.shards):02d}"

    def path_for(self, digest: str) -> Path:
        """The content-addressed file for ``digest``."""
        return self.segment(digest) / f"{digest}.json"

    @property
    def lease_dir(self) -> Path:
        """Directory holding the per-digest coalescing lease files."""
        return self.root / "leases"

    def lease_path(self, digest: str) -> Path:
        """The lease file guarding ``digest``'s coalescing group."""
        return self.lease_dir / f"{digest}{LEASE_SUFFIX}"

    # -- entries -------------------------------------------------------------
    def get(self, digest: str) -> Optional[dict]:
        """The stored result payload for ``digest``, or None on any miss.

        Damage (bitrot, torn frame, checksum mismatch, content that does
        not match its address) quarantines the file and reports a miss —
        the caller re-simulates; bad bytes are never served.
        """
        path = self.path_for(digest)
        try:
            _, doc = load_json_artifact(path, expect_format=RESULT_FORMAT)
        except FileNotFoundError:
            self.counters["misses"] += 1
            return None
        except (ArtifactError, OSError, ValueError) as exc:
            self.counters["corrupt_misses"] += 1
            dest = quarantine(path)
            log.warning(
                "%s: unreadable result entry (%s); quarantined to %s, "
                "treating as a miss",
                path, exc, dest,
            )
            return None
        payload = doc.get("payload")
        if doc.get("identity") != digest or not isinstance(payload, dict):
            # Content-address honesty: the document must be the result it
            # is filed under. A mismatch means a mislabeled or tampered
            # entry — quarantine it and miss.
            self.counters["corrupt_misses"] += 1
            dest = quarantine(path)
            log.warning(
                "%s: content-address mismatch (stored identity %r); "
                "quarantined to %s",
                path, doc.get("identity"), dest,
            )
            return None
        if doc.get("integrity", INTEGRITY_UNVERIFIED) not in INTEGRITY_STATUSES:
            # A live entry may only be unverified or verified. Anything
            # else (a stray "divergent", tampering) is untrustworthy.
            self.counters["corrupt_misses"] += 1
            dest = quarantine(path)
            log.warning(
                "%s: invalid integrity status %r; quarantined to %s",
                path, doc.get("integrity"), dest,
            )
            return None
        self.counters["hits"] += 1
        return payload

    def peek(self, digest: str) -> Optional[dict]:
        """The stored payload without counters, quarantine, or validation
        side effects — audit use only (e.g. the chaos-day campaign's
        silent-corruption audit). Never use this to *serve*."""
        try:
            _, doc = load_json_artifact(
                self.path_for(digest), expect_format=RESULT_FORMAT
            )
        except (FileNotFoundError, ArtifactError, OSError, ValueError):
            return None
        payload = doc.get("payload")
        return payload if isinstance(payload, dict) else None

    def integrity_of(self, digest: str) -> Optional[str]:
        """The live entry's integrity status, or None when absent/bad."""
        try:
            _, doc = load_json_artifact(
                self.path_for(digest), expect_format=RESULT_FORMAT
            )
        except (FileNotFoundError, ArtifactError, OSError, ValueError):
            return None
        status = doc.get("integrity", INTEGRITY_UNVERIFIED)
        return status if isinstance(status, str) else None

    def put(
        self,
        digest: str,
        request_fields: dict,
        payload: dict,
        integrity: str = INTEGRITY_UNVERIFIED,
    ) -> bool:
        """Durably store ``payload`` under ``digest``; returns success.

        The canonical request fields ride inside the document so ``repro
        fsck`` can re-derive the digest and verify the address end-to-end.
        A failed write (ENOSPC past retries, injected fault) is absorbed
        and counted: one lost entry costs one future re-simulation.
        """
        if integrity not in INTEGRITY_STATUSES:
            raise ValueError(
                f"integrity {integrity!r}: must be one of {INTEGRITY_STATUSES}"
            )
        doc = embed_json_artifact(
            {
                "identity": digest,
                "request": request_fields,
                "payload": payload,
                "integrity": integrity,
            },
            RESULT_FORMAT,
            RESULT_VERSION,
        )
        blob = (json.dumps(doc, indent=2, sort_keys=True) + "\n").encode("utf-8")
        try:
            atomic_write_bytes(self.path_for(digest), blob)
        except StorageError as exc:
            self.counters["put_errors"] += 1
            log.warning("%s: result-store put failed (%s); entry skipped",
                        self.path_for(digest), exc)
            return False
        self.counters["puts"] += 1
        return True

    def __contains__(self, digest: str) -> bool:
        return self.path_for(digest).exists()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(
            1
            for seg in self.root.glob("shard-*")
            for p in seg.glob("*.json")
        )

    # -- integrity -----------------------------------------------------------
    def divergent_path(self, digest: str) -> Path:
        """Where ``digest``'s divergence evidence is quarantined."""
        return self.segment(digest) / f"{digest}.json{DIVERGENT_SUFFIX}"

    def mark_verified(self, digest: str) -> bool:
        """Promote a live entry ``unverified`` → ``verified`` (a shadow
        re-execution reproduced its digest). Atomic rewrite; best-effort
        — a failed promotion leaves a perfectly servable unverified entry.
        """
        path = self.path_for(digest)
        try:
            _, doc = load_json_artifact(path, expect_format=RESULT_FORMAT)
        except (FileNotFoundError, ArtifactError, OSError, ValueError):
            return False
        request = doc.get("request")
        payload = doc.get("payload")
        if not isinstance(request, dict) or not isinstance(payload, dict):
            return False
        if self.put(digest, request, payload, integrity=INTEGRITY_VERIFIED):
            self.counters["verified_marks"] += 1
            return True
        return False

    def quarantine_divergent(
        self,
        digest: str,
        request_fields: dict,
        *,
        primary_payload: dict,
        shadow_payload: dict,
        detail: str = "",
    ) -> Optional[Path]:
        """Evict ``digest`` and quarantine *both* conflicting results.

        The live entry is replaced by a ``*.divergent`` evidence document
        holding the served (primary) payload and the shadow re-execution's
        payload side by side — post-mortem material, never servable (the
        suffix is not content-addressed and every read path ignores it).
        From this call on the digest is a miss until a fresh simulation
        re-stores it. Returns the evidence path, or None when even the
        evidence write failed (the eviction still happens: serving a
        suspect entry is worse than forgetting why it was suspect).
        """
        evidence = {
            "identity": digest,
            "request": request_fields,
            "primary": primary_payload,
            "shadow": shadow_payload,
            "detail": detail,
        }
        doc = embed_json_artifact(evidence, DIVERGENCE_FORMAT, DIVERGENCE_VERSION)
        blob = (json.dumps(doc, indent=2, sort_keys=True) + "\n").encode("utf-8")
        dest: Optional[Path] = self.divergent_path(digest)
        try:
            atomic_write_bytes(dest, blob)
        except StorageError as exc:
            log.warning("%s: divergence evidence not written (%s)", dest, exc)
            dest = None
        try:
            os.unlink(self.path_for(digest))
        except FileNotFoundError:
            pass  # already evicted (e.g. a racing quarantine) — idempotent
        except OSError as exc:
            log.warning(
                "%s: could not evict divergent entry (%s)",
                self.path_for(digest), exc,
            )
        self.counters["divergent_quarantines"] += 1
        log.warning(
            "%s: divergent result quarantined (%s); digest evicted",
            digest[:12], detail or "no detail",
        )
        return dest

    def evict(self, digest: str) -> bool:
        """Drop ``digest``'s live entry without quarantine or evidence.

        The fail-safe path for an entry that *might* be wrong but was
        never proven so — e.g. a sampled result whose shadow re-execution
        could not answer (shed under load, refused while draining). The
        next request simply re-simulates; nothing suspect stays servable.
        Returns True when an entry was removed.
        """
        try:
            os.unlink(self.path_for(digest))
        except FileNotFoundError:
            return False
        except OSError as exc:
            log.warning("%s: entry not evicted (%s)", self.path_for(digest), exc)
            return False
        self.counters["integrity_evictions"] += 1
        return True

    def integrity_summary(self) -> Dict[str, int]:
        """Integrity census of the whole store: live entries per status
        (plus ``invalid`` for unreadable/garbage statuses) and the count
        of quarantined ``*.divergent`` evidence files. The chaos-day
        contract requires ``divergent_live == 0`` — divergence must always
        have evicted."""
        out = {
            INTEGRITY_UNVERIFIED: 0,
            INTEGRITY_VERIFIED: 0,
            "invalid": 0,
            "divergent_live": 0,
            "divergent_evidence": 0,
        }
        if not self.root.is_dir():
            return out
        for seg in sorted(self.root.glob("shard-*")):
            out["divergent_evidence"] += sum(
                1 for _ in seg.glob(f"*{DIVERGENT_SUFFIX}")
            )
            for path in sorted(seg.glob("*.json")):
                try:
                    _, doc = load_json_artifact(path, expect_format=RESULT_FORMAT)
                except (ArtifactError, OSError, ValueError):
                    out["invalid"] += 1
                    continue
                status = doc.get("integrity", INTEGRITY_UNVERIFIED)
                if status in INTEGRITY_STATUSES:
                    out[status] += 1
                elif status == "divergent":
                    out["divergent_live"] += 1
                else:
                    out["invalid"] += 1
        return out

    # -- leases --------------------------------------------------------------
    def acquire_lease(self, digest: str) -> bool:
        """Try to become the leader for ``digest``; True when acquired.

        A conflicting lease whose stamped holder is dead is broken
        (unlinked — fresh file, fresh owner) and the acquisition retried
        once, mirroring the journal's stale-lock breaking. A conflict with
        a live holder returns False: the caller should coalesce on the
        remote leader's eventual result instead of duplicating its work.
        """
        self.lease_dir.mkdir(parents=True, exist_ok=True)
        path = self.lease_path(digest)
        for final in (False, True):
            try:
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            except FileExistsError:
                holder = self.lease_holder(digest)
                if final or holder is None or pid_alive(holder):
                    return False
                self.break_lease(digest)
                continue
            try:
                os.write(fd, str(os.getpid()).encode("ascii"))
            finally:
                os.close(fd)
            return True
        return False  # pragma: no cover — loop always returns

    def lease_holder(self, digest: str) -> Optional[int]:
        """The PID stamped on ``digest``'s lease, or None (absent lease or
        a not-yet-stamped one — treated as live by runtime callers)."""
        try:
            stamp = self.lease_path(digest).read_text(encoding="ascii").strip()
            return int(stamp)
        except (OSError, ValueError):
            return None

    def lease_stale(self, digest: str) -> bool:
        """Whether ``digest``'s lease exists but its stamped holder is dead.

        An unstamped/unparseable lease is *not* stale here: a racing
        acquirer stamps its PID an instant after creating the file.
        """
        holder = self.lease_holder(digest)
        return holder is not None and not pid_alive(holder)

    def break_lease(self, digest: str) -> bool:
        """Unlink ``digest``'s lease (dead or stalled leader); True if
        something was removed. The next acquirer becomes the new leader."""
        try:
            os.unlink(self.lease_path(digest))
        except FileNotFoundError:
            return False
        except OSError:
            return False
        self.counters["lease_breaks"] += 1
        return True

    def release_lease(self, digest: str) -> None:
        """Drop a lease this process holds (idempotent, best-effort)."""
        try:
            os.unlink(self.lease_path(digest))
        except OSError:
            pass

    def break_stale_leases(self) -> int:
        """Startup sweep: unlink every lease held by a dead PID.

        A service that crashed mid-simulation leaves its leases behind;
        without this sweep a restart would treat every one of them as a
        live remote leader and wait out the stall timeout before serving
        those digests. Unparseable stamps are broken too — at startup
        nothing of ours is mid-acquisition, and a crash between lease
        creation and PID stamping would otherwise block its digest
        forever. Returns the number of leases broken.

        Concurrent-sweeper safe: two front doors restarting over one
        store race this sweep file-by-file. A lease that vanishes between
        the directory scan and the unlink (FileNotFoundError at either
        step) was broken by the other sweeper — that is *success* for
        both of them (the dead lease is gone), counted by exactly the one
        whose unlink landed. Neither sweeper ever raises.
        """
        if not self.lease_dir.is_dir():
            return 0
        broken = 0
        for path in sorted(self.lease_dir.glob(f"*{LEASE_SUFFIX}")):
            try:
                stamp = path.read_text(encoding="ascii").strip()
                holder: Optional[int] = int(stamp)
            except FileNotFoundError:
                continue  # a concurrent sweeper already broke it
            except (OSError, ValueError):
                holder = None
            if holder is not None and pid_alive(holder):
                continue
            try:
                path.unlink()
            except FileNotFoundError:
                continue  # lost the unlink race: idempotent success, not ours to count
            except OSError as exc:
                log.warning("%s: stale lease not removed (%s)", path, exc)
                continue
            broken += 1
            log.warning(
                "%s: broke stale result-store lease (holder %s dead)",
                path, stamp if holder is not None else "unstamped",
            )
        self.counters["stale_leases_broken"] += broken
        return broken

    # -- observability -------------------------------------------------------
    def stats(self) -> dict:
        """Counter snapshot plus layout facts."""
        return {
            "root": str(self.root),
            "shards": self.shards,
            "counters": dict(self.counters),
        }
