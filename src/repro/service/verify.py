"""Shadow verification: catch silently wrong answers before they spread.

The paper's scheduling decisions are pure functions of per-quantum counter
values, and the fault families of ``repro.faults`` show those values can be
*silently* wrong — no crash, no bad checksum, just a different number. The
serving stack amplifies exactly that failure: one corrupted full-fidelity
result lands in the content-addressed :class:`~repro.service.resultstore.
ResultStore` and is then replayed verbatim to every future request with the
same identity. Checksums cannot help; the bytes are faithfully the wrong
answer.

The defense is re-execution. A :class:`ShadowVerifier` samples completed
full-fidelity results (seeded per-digest draw, so the sample is a
deterministic function of ``(seed, identity)`` and independent of arrival
order) and re-runs each sampled request on a *different* shard's worker.
The two payload summary digests are compared:

* **match** — the store entry is promoted ``unverified`` → ``verified``;
* **divergence** — both results are quarantined into a ``*.divergent``
  evidence document, the live store entry is evicted (a future request
  re-simulates rather than trusting either copy), and a third,
  *authoritative* re-execution decides best-2-of-3: whichever of the two
  originals it reproduces is re-stored as ``verified``; if it matches
  neither, the digest stays evicted and is counted ``unresolved``.

A shadow that cannot answer at full fidelity (shed under load, refused
while draining) is ``inconclusive`` — never grounds for quarantine: the
verifier must have a zero false-positive rate on healthy systems (see
``tests/test_verify.py``'s property suite).

The verifier never submits through the front door (that would hit the very
store entry under suspicion); it dispatches straight to a shard and its
responses are consumed internally — they are invisible to the request
conservation contract.
"""

from __future__ import annotations

import hashlib
import json
import logging
import math
import random
import struct
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

from repro.harness.errors import OUTCOME_FULL
from repro.service.identity import canonical_fields
from repro.service.request import SimRequest, SimResponse
from repro.service.resultstore import (
    INTEGRITY_VERIFIED,
    ResultStore,
)

log = logging.getLogger("repro.verify")

#: Stable counter names reported by :attr:`ShadowVerifier.counters`.
VERIFY_COUNTERS = (
    "sampled",
    "verified",
    "divergent",
    "inconclusive",
    "restored",
    "unresolved",
)

#: Phases of one verification job.
_PHASE_SHADOW = "shadow"
_PHASE_AUTHORITY = "authority"


def payload_digest(payload: dict) -> str:
    """SHA-256 of a result payload's canonical JSON — the summary digest
    two executions of the same identity are compared by. Deterministic
    engines make this digest a function of the request identity alone, so
    any difference between two runs is a wrong answer, not noise."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def corrupt_payload(payload: dict, rng: random.Random) -> Optional[dict]:
    """Flip one mantissa bit of the first finite numeric field (sorted key
    order — deterministic under a seeded ``rng``): the injected
    silent-corruption event. Exponent bits are left alone so the corrupted
    value stays finite — plausible, parseable, checksummable, wrong.
    Returns None when the payload has nothing numeric to corrupt."""
    for key in sorted(payload):
        value = payload[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if not math.isfinite(value):
            continue
        bits = struct.unpack("<Q", struct.pack("<d", float(value)))[0]
        bits ^= 1 << rng.randrange(0, 52)
        corrupted = dict(payload)
        corrupted[key] = struct.unpack("<d", struct.pack("<Q", bits))[0]
        return corrupted
    return None


@dataclass
class _VerifyJob:
    """One sampled digest's verification state across its phases."""

    digest: str
    request: SimRequest  # the leader request the result answered
    home_shard: int
    primary_payload: dict
    primary_sha: str
    phase: str = _PHASE_SHADOW
    shadow_payload: Optional[dict] = None
    shadow_sha: Optional[str] = None


class ShadowVerifier:
    """Seeded sampling re-executor over the sharded service's results.

    ``dispatch(shard_index, request)`` submits a verification request
    directly to one shard (bypassing the front door's store/coalescing so
    the re-execution is genuinely independent); the owning router feeds
    every response whose request_id this verifier :meth:`owns` back into
    :meth:`on_response` and drops it from the public response stream.
    """

    def __init__(
        self,
        *,
        rate: float,
        seed: int = 0,
        shards: int = 1,
        dispatch: Callable[[int, SimRequest], Optional[SimResponse]],
        store: Optional[ResultStore] = None,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"verify rate {rate!r}: must be in [0, 1]")
        self.rate = float(rate)
        self.seed = int(seed)
        self.shards = max(1, int(shards))
        self.dispatch = dispatch
        self.store = store
        self.counters: Dict[str, int] = {n: 0 for n in VERIFY_COUNTERS}
        self.quarantined: List[str] = []  # digests, in divergence order
        self._jobs: Dict[str, _VerifyJob] = {}  # verify request_id -> job
        self._spawned = 0

    # -- sampling ------------------------------------------------------------
    def wants(self, digest: str) -> bool:
        """The seeded per-digest sample draw. Keyed by (seed, digest), not
        by a shared stream, so the same digests verify no matter how many
        results raced past in between — reports stay reproducible."""
        if self.rate <= 0.0:
            return False
        if self.rate >= 1.0:
            return True
        return random.Random(f"verify:{self.seed}:{digest}").random() < self.rate

    def owns(self, request_id: str) -> bool:
        """Whether a response belongs to this verifier (and must not be
        surfaced as a client answer)."""
        return request_id in self._jobs

    @property
    def inflight(self) -> int:
        return len(self._jobs)

    # -- lifecycle -----------------------------------------------------------
    def start(
        self, digest: str, request: SimRequest, payload: dict, home_shard: int
    ) -> None:
        """Begin verifying ``digest``: shadow re-execution on the next
        shard over. Call only after :meth:`wants` said yes."""
        self.counters["sampled"] += 1
        job = _VerifyJob(
            digest=digest,
            request=request,
            home_shard=home_shard,
            primary_payload=payload,
            primary_sha=payload_digest(payload),
        )
        self._submit(job, (home_shard + 1) % self.shards)

    def _submit(self, job: _VerifyJob, shard_index: int) -> None:
        self._spawned += 1
        rid = f"verify-{job.phase}-{job.digest[:12]}-{self._spawned}"
        probe = replace(
            job.request,
            request_id=rid,
            client="__verify__",
            degradable=False,  # a fast-model answer would always "diverge"
            deadline_s=None,
        )
        self._jobs[rid] = job
        self.dispatch(shard_index, probe)

    def on_response(self, response: SimResponse) -> None:
        """Consume one verification response (shadow or authority)."""
        job = self._jobs.pop(response.request_id, None)
        if job is None:  # pragma: no cover — router checks owns() first
            return
        if job.phase == _PHASE_SHADOW:
            self._finish_shadow(job, response)
        else:
            self._finish_authority(job, response)

    def _finish_shadow(self, job: _VerifyJob, response: SimResponse) -> None:
        if response.outcome != OUTCOME_FULL or response.payload is None:
            # Shed / refused / degraded shadow: no second opinion was
            # obtained. Never quarantine on a non-answer — but fail safe:
            # a sampled entry stays servable only if its verdict lands,
            # so evict it and let the next request re-simulate. On a
            # healthy system this can only fire while draining, and
            # costs one future re-simulation, never a wrong refusal.
            self.counters["inconclusive"] += 1
            if self.store is not None:
                self.store.evict(job.digest)
            return
        sha = payload_digest(response.payload)
        if sha == job.primary_sha:
            self.counters["verified"] += 1
            if self.store is not None:
                self.store.mark_verified(job.digest)
            return
        # Divergence: two full-fidelity executions of one identity
        # disagree. Quarantine both, evict the live entry, and let a third
        # execution arbitrate.
        self.counters["divergent"] += 1
        self.quarantined.append(job.digest)
        log.warning(
            "%s: shadow divergence (primary %s… vs shadow %s…); "
            "entry evicted, re-running authoritatively",
            job.digest[:12], job.primary_sha[:12], sha[:12],
        )
        if self.store is not None:
            self.store.quarantine_divergent(
                job.digest,
                canonical_fields(job.request),
                primary_payload=job.primary_payload,
                shadow_payload=response.payload,
                detail=f"primary {job.primary_sha} vs shadow {sha}",
            )
        job.phase = _PHASE_AUTHORITY
        job.shadow_payload = response.payload
        job.shadow_sha = sha
        self._submit(job, (job.home_shard + 2) % self.shards)

    def _finish_authority(self, job: _VerifyJob, response: SimResponse) -> None:
        if response.outcome != OUTCOME_FULL or response.payload is None:
            self.counters["unresolved"] += 1
            return
        sha = payload_digest(response.payload)
        if sha == job.shadow_sha:
            winner: Optional[dict] = job.shadow_payload
        elif sha == job.primary_sha:
            winner = job.primary_payload
        else:
            # Three executions, three answers: nothing is trustworthy.
            # The digest stays evicted; the next real request re-simulates.
            self.counters["unresolved"] += 1
            log.warning(
                "%s: best-2-of-3 unresolved (three distinct results); "
                "digest stays evicted", job.digest[:12],
            )
            return
        self.counters["restored"] += 1
        if self.store is not None and winner is not None:
            self.store.put(
                job.digest,
                canonical_fields(job.request),
                winner,
                integrity=INTEGRITY_VERIFIED,
            )

    def abandon_all(self) -> int:
        """Give up on every in-flight probe (drain deadline reached).

        Pending shadows become ``inconclusive`` (no second opinion was
        obtained — never a quarantine); pending authorities become
        ``unresolved`` (the digest is already evicted, which is the safe
        state). Returns how many jobs were abandoned.
        """
        abandoned = len(self._jobs)
        for job in self._jobs.values():
            if job.phase == _PHASE_SHADOW:
                self.counters["inconclusive"] += 1
            else:
                self.counters["unresolved"] += 1
        self._jobs.clear()
        return abandoned
