"""Overload-safe simulation serving.

Wraps the batch harness in a long-running service with bounded admission
(backpressure, per-client fairness, deadline shedding), a circuit breaker
over the full-fidelity worker pool, graceful degradation onto the
calibrated fast model (every degraded answer explicitly marked), and a
drain path that answers every accepted request before exit. A sharded
front-door (:class:`~repro.service.router.ShardedService`) routes by
deterministic request identity across a pool of such services, coalesces
identical in-flight requests under crash-safe leases, and serves repeats
from a content-addressed durable result store. See ``DESIGN.md`` §9/§13
and the module docstrings for the full story.
"""

from repro.service.admission import (
    AdmissionQueue,
    REASON_CLIENT_QUOTA,
    REASON_QUEUE_FULL,
)
from repro.service.breaker import (
    CircuitBreaker,
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
)
from repro.service.autoscale import (
    Autoscaler,
    AutoscalerConfig,
    AutoscalingPool,
    ScaleEvent,
)
from repro.service.loadgen import (
    BurstSpec,
    TimedRequest,
    TrafficSpec,
    VirtualClock,
    breakdown,
    generate_burst,
    generate_traffic,
    load_recording,
    replay_realtime,
    replay_traffic,
    save_recording,
    traffic_fingerprint,
)
from repro.service.request import (
    QueueEntry,
    SimRequest,
    SimResponse,
    TIER_FAST,
    TIER_FULL,
    TIER_KINDS,
    TIER_NONE,
)
from repro.service.identity import (
    IDENTITY_SCHEME,
    canonical_fields,
    fields_digest,
    request_identity,
    shard_of,
)
from repro.service.dlq import DeadLetterQueue
from repro.service.resultstore import (
    INTEGRITY_UNVERIFIED,
    INTEGRITY_VERIFIED,
    ResultStore,
)
from repro.service.router import ShardedService
from repro.service.verify import (
    ShadowVerifier,
    VERIFY_COUNTERS,
    payload_digest,
)
from repro.service.server import ServeLoop
from repro.service.service import ServiceConfig, SimulationService

__all__ = [
    "AdmissionQueue",
    "Autoscaler",
    "AutoscalerConfig",
    "AutoscalingPool",
    "BurstSpec",
    "CircuitBreaker",
    "DeadLetterQueue",
    "IDENTITY_SCHEME",
    "INTEGRITY_UNVERIFIED",
    "INTEGRITY_VERIFIED",
    "QueueEntry",
    "ResultStore",
    "ShadowVerifier",
    "ShardedService",
    "VERIFY_COUNTERS",
    "REASON_CLIENT_QUOTA",
    "REASON_QUEUE_FULL",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "ScaleEvent",
    "ServeLoop",
    "ServiceConfig",
    "SimRequest",
    "SimResponse",
    "SimulationService",
    "TIER_FAST",
    "TIER_FULL",
    "TIER_KINDS",
    "TIER_NONE",
    "TimedRequest",
    "TrafficSpec",
    "VirtualClock",
    "breakdown",
    "canonical_fields",
    "fields_digest",
    "generate_burst",
    "generate_traffic",
    "load_recording",
    "payload_digest",
    "replay_realtime",
    "replay_traffic",
    "request_identity",
    "save_recording",
    "shard_of",
    "traffic_fingerprint",
]
