"""The overload-safe simulation service.

``SimulationService`` turns the batch harness into a long-lived component
that can accept a *stream* of simulation requests and protect itself under
load instead of falling over. Four mechanisms, layered:

1. **Admission control / backpressure** — a bounded
   :class:`~repro.service.admission.AdmissionQueue` (priority, EDF,
   per-client fairness caps). A full queue refuses work with a
   machine-readable reason; a job whose deadline lapses while queued is
   shed at dequeue. Nothing is ever silently dropped: every submitted
   request receives exactly one :class:`~repro.service.request.SimResponse`.

2. **Circuit breaking** — a
   :class:`~repro.service.breaker.CircuitBreaker` watches consecutive
   full-fidelity failures (the supervisor's taxonomy: crash / timeout /
   stalled-heartbeat / exception / invariant). Open = stop dispatching to
   the detailed engine; half-open = one canary probe; success closes.

3. **Graceful degradation** — the paper's own move, applied to the serving
   layer: ADTS switches *scheduling policy* when throughput sags; the
   service switches *simulation engine* when the full pipeline can't keep
   up. Under queue pressure or an open breaker, degradable requests are
   served by the calibrated :func:`~repro.fastmodel.fast_serve` model, the
   response explicitly marked ``degraded: true`` with the reason recorded.
   Full-fidelity service restores itself when pressure subsides.

4. **Graceful drain** — :meth:`SimulationService.drain` stops admission,
   lets in-flight and queued work finish inside a deadline, SIGKILLs
   stragglers past it (their last quantum-boundary
   :mod:`~repro.smt.checkpoint` snapshot survives for a later restart when
   a checkpoint directory is configured), sheds what never ran, flushes
   and unlocks the journal, and leaves every request answered.

The service is single-threaded by design: :meth:`submit` and :meth:`pump`
are called from one thread (the serve loop), while the heavy lifting
happens in supervised child processes via the streaming
:class:`~repro.harness.executor.SupervisedExecutor` API. With
``workers=0`` the full tier runs inline (deterministic, used by tests).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.faults import FaultPlan
from repro.harness.errors import (
    FAILURE_CRASH,
    FAILURE_EXCEPTION,
    OUTCOME_DEGRADED,
    OUTCOME_FAILED,
    OUTCOME_FULL,
    OUTCOME_REJECTED,
    OUTCOME_SHED,
    ConfigError,
)
from repro.harness.journal import RunJournal
from repro.service.admission import AdmissionQueue
from repro.service.autoscale import Autoscaler, AutoscalerConfig, AutoscalingPool
from repro.service.breaker import STATE_OPEN, CircuitBreaker
from repro.service.request import (
    QueueEntry,
    SimRequest,
    SimResponse,
    TIER_FAST,
    TIER_FULL,
    TIER_NONE,
)
from repro.util.seeds import SeedSequencer


@dataclass(frozen=True)
class ServiceConfig:
    """Service knobs.

    Attributes:
        workers: supervised full-fidelity worker processes (0 = run the
            full tier inline in the calling thread — deterministic, for
            tests and the overload demo's serial mode).
        queue_capacity: admission queue bound.
        per_client_cap: max queued jobs per client (None = capacity // 2).
        degrade_at_depth: queue depth at which degradable submits are
            served by the fast model instead of queueing (None = only when
            the queue is actually full).
        max_attempts: full-tier attempts per request before falling back
            (degrade or fail).
        breaker_failures: consecutive full-tier failures that open the
            circuit breaker.
        breaker_cooldown_s: open → half-open delay.
        run_timeout_s / heartbeat_timeout_s: per-attempt supervision limits
            (see :class:`~repro.harness.executor.ExecutorConfig`).
        drain_deadline_s: default budget for :meth:`SimulationService.drain`.
        checkpoint_dir: per-cell mid-run snapshot directory; a straggler
            SIGKILLed at the drain deadline leaves its latest
            quantum-boundary snapshot here.
        journal_path: optional response journal — completed full-fidelity
            payloads are durably appended and served as instant hits on
            resubmission (warm restart).
        fault_plan: service-level chaos hooks (``service_overload_rate`` /
            ``service_breaker_trip_rate``), seeded and deterministic.
        shard_id: this service's index behind a sharded front-door
            (:class:`~repro.service.router.ShardedService`); stamped on
            spawned work items so worker telemetry attributes attempts
            to their shard. None when running unsharded.
        trace_cache_dir: per-shard trace-cache segment; worker cells set
            ``REPRO_TRACE_CACHE`` to it so two shards never contend on
            one cache directory.
        autoscaler: scale the worker pool on queue depth, deadline-miss
            rate and breaker state (see
            :class:`~repro.service.autoscale.AutoscalerConfig`). With
            ``workers > 0`` the pool's concurrency cap follows the
            target (never killing in-flight attempts on scale-down);
            with ``workers == 0`` the target bounds how many inline
            full-tier runs one pump dispatches — same state machine,
            deterministic under a virtual clock.
    """

    workers: int = 2
    queue_capacity: int = 16
    per_client_cap: Optional[int] = None
    degrade_at_depth: Optional[int] = None
    max_attempts: int = 1
    breaker_failures: int = 3
    breaker_cooldown_s: float = 5.0
    run_timeout_s: Optional[float] = None
    heartbeat_timeout_s: Optional[float] = None
    drain_deadline_s: float = 10.0
    poll_interval_s: float = 0.02
    checkpoint_dir: Optional[Union[str, Path]] = None
    journal_path: Optional[Union[str, Path]] = None
    fault_plan: Optional[FaultPlan] = None
    autoscaler: Optional[AutoscalerConfig] = None
    shard_id: Optional[int] = None
    trace_cache_dir: Optional[Union[str, Path]] = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.drain_deadline_s <= 0:
            raise ValueError("drain_deadline_s must be positive")


def _default_fast_runner(request: SimRequest) -> dict:
    from repro.fastmodel import fast_serve

    return fast_serve(
        request.mix,
        mode=request.mode,
        policy=request.policy,
        heuristic=request.heuristic,
        threshold=request.threshold,
        quanta=request.quanta,
        seed=request.seed,
        quantum_cycles=request.quantum_cycles,
    )


def _request_fault_plan(request: SimRequest) -> Optional[FaultPlan]:
    if not request.fault_kinds:
        return None
    return FaultPlan.from_kinds(
        list(request.fault_kinds), rate=request.fault_rate, seed=request.seed
    )


def _default_full_runner(request: SimRequest) -> dict:
    """Inline full tier (``workers=0``): the detailed engine, in-process.

    Worker-family faults are stripped — unsupervised, a seeded SIGKILL
    would take down the *service* process, which is exactly the blast
    radius the supervised pool exists to contain.
    """
    from repro.core.thresholds import ThresholdConfig
    from repro.harness.runner import run_adts, run_fixed

    cfg = request.run_config()
    plan = _request_fault_plan(request)
    if plan is not None:
        plan = plan.without_worker_faults()
    if request.mode == "adts":
        r = run_adts(
            cfg,
            heuristic=request.heuristic,
            thresholds=ThresholdConfig(ipc_threshold=request.threshold),
            fault_plan=plan,
        )
    else:
        r = run_fixed(cfg, fault_plan=plan)
    return {
        "ipc": r.ipc,
        "switches": r.scheduler.get("switches", 0),
        "benign_probability": r.scheduler.get("benign_probability", 0.0),
    }


#: Stable counter names reported by :meth:`SimulationService.stats`.
COUNTER_NAMES = (
    "submitted",
    "admitted",
    "completed_full",
    "journal_hits",
    "degraded",
    "rejected",
    "shed",
    "failed",
    "retries",
    "full_failures",
    "drain_killed",
    "checkpointed",
)


class SimulationService:
    """Long-running, overload-safe front end over the simulation engines."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        full_runner: Optional[Callable[[SimRequest], dict]] = None,
        fast_runner: Optional[Callable[[SimRequest], dict]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or ServiceConfig()
        cfg = self.config
        self.clock = clock
        self.queue = AdmissionQueue(cfg.queue_capacity, cfg.per_client_cap)
        self.breaker = CircuitBreaker(
            cfg.breaker_failures, cfg.breaker_cooldown_s, clock
        )
        self.autoscaler = Autoscaler(cfg.autoscaler) if cfg.autoscaler else None
        self.executor = None
        if cfg.workers > 0:
            from repro.harness.executor import ExecutorConfig, SupervisedExecutor

            pool_size = cfg.workers
            if self.autoscaler is not None:
                # The pool is provisioned at the scaling ceiling; the
                # autoscaler's soft cap governs how much of it is used.
                pool_size = max(cfg.workers, cfg.autoscaler.max_workers)
            self.executor = SupervisedExecutor(
                ExecutorConfig(
                    workers=pool_size,
                    run_timeout_s=cfg.run_timeout_s,
                    heartbeat_timeout_s=cfg.heartbeat_timeout_s,
                    max_restarts=0,  # the service owns retry policy
                    poll_interval_s=cfg.poll_interval_s,
                    checkpoint_dir=(
                        Path(cfg.checkpoint_dir) if cfg.checkpoint_dir else None
                    ),
                )
            )
            if self.autoscaler is not None:
                self.executor = AutoscalingPool(self.executor, self.autoscaler)
        self._full_runner = full_runner or _default_full_runner
        self._fast_runner = fast_runner or _default_fast_runner
        self._journal: Optional[RunJournal] = None
        if cfg.journal_path:
            self._journal = RunJournal(cfg.journal_path)
            # Salvage rather than abort: a service must come up even when its
            # response journal took damage — intact responses stay instant
            # hits, damaged records simply re-run, the corrupt original is
            # quarantined to *.corrupt for `repro fsck` / post-mortem.
            self._journal.recover()
        self._fault_rng = None
        if cfg.fault_plan is not None and (
            cfg.fault_plan.service_overload_rate > 0.0
            or cfg.fault_plan.service_breaker_trip_rate > 0.0
        ):
            self._fault_rng = SeedSequencer(cfg.fault_plan.seed).generator(
                "service-faults"
            )
        self._inflight: Dict[str, QueueEntry] = {}  # result_key -> entry
        self._scale_snapshot = (0, 0)  # (shed, answered) at the last observe
        self._completed: List[SimResponse] = []
        self._seq = 0
        self._accepting = True
        self._draining = False
        self.paused = False
        # Behaviour observability: duck-typed drift guard (attached by the
        # harness; this module never imports repro.behavior) and the label
        # under which this run's profile will be snapshotted.
        self._drift_guard = None
        self.profile_label: Optional[str] = None
        self.counters: Dict[str, int] = {name: 0 for name in COUNTER_NAMES}

    def attach_drift_guard(self, guard) -> None:
        """Attach a rolling drift guard; fed one summary per pump."""
        self._drift_guard = guard

    # -- admission (the degradation ladder's first rung) ---------------------
    def submit(self, request: SimRequest) -> Optional[SimResponse]:
        """Offer one request to the service.

        Returns the response when the disposition is immediate (rejected,
        journal hit, served degraded at admission); returns None when the
        request was admitted to the queue — its response arrives through
        :meth:`take_completed` once a worker finishes it. Either way the
        response is also appended to the completed stream, which is the
        single source of truth for conservation accounting.
        """
        cfg = self.config
        self.counters["submitted"] += 1
        if not self._accepting:
            return self._respond_rejected(request, "draining")
        try:
            request.run_config()  # validates mix/policy/quanta/…
            if request.mode not in ("adts", "fixed"):
                raise ConfigError("mode", request.mode, "'adts' or 'fixed'")
        except ConfigError as exc:
            return self._respond_rejected(request, f"invalid-request: {exc}")

        if self._journal is not None:
            hit = self._journal.get(request.sim_key())
            if hit is not None:
                self.counters["journal_hits"] += 1
                return self._respond_full(request, hit, attempts=0, wait_s=0.0)

        # Ladder rung 2: open breaker — the full tier is presumed down.
        if self.breaker.state == STATE_OPEN:
            if request.degradable:
                return self._respond_degraded(request, "breaker-open")
            return self._respond_rejected(request, "breaker-open")

        # Ladder rung 2.5: the drift guard holds sustained-drift pressure —
        # behaviour has departed the baseline, so shield the full tier by
        # fast-serving degradable traffic (still answered exactly once).
        if (
            self._drift_guard is not None
            and getattr(self._drift_guard, "degrade_active", False)
            and request.degradable
        ):
            return self._respond_degraded(request, "drift-guard")

        # Ladder rung 3: queue pressure (real or chaos-injected).
        overloaded = (
            self._fault_rng is not None
            and self._fault_rng.random() < cfg.fault_plan.service_overload_rate
        )
        degrade_at = (
            cfg.degrade_at_depth
            if cfg.degrade_at_depth is not None
            else cfg.queue_capacity
        )
        if overloaded or self.queue.depth >= degrade_at:
            reason = "fault-overload" if overloaded else "queue-pressure"
            if request.degradable:
                return self._respond_degraded(request, reason)
            if overloaded:
                return self._respond_rejected(request, reason)
            # non-degradable: let the bounded queue itself decide below

        now = self.clock()
        self._seq += 1
        entry = QueueEntry(
            request=request,
            seq=self._seq,
            enqueued_at=now,
            expires_at=(
                now + request.deadline_s if request.deadline_s is not None else None
            ),
        )
        refusal = self.queue.offer(entry)
        if refusal is not None:
            if request.degradable:
                return self._respond_degraded(request, refusal)
            return self._respond_rejected(request, refusal)
        self.counters["admitted"] += 1
        return None

    # -- the dispatch pump ---------------------------------------------------
    def pump(self) -> int:
        """One non-blocking dispatch iteration; returns responses produced.

        Reaps finished worker attempts (feeding the breaker), sheds expired
        queued jobs, fast-serves the degradable backlog while the breaker
        is open, and dispatches full-fidelity attempts while capacity and
        the breaker allow.
        """
        produced = len(self._completed)
        now = self.clock()
        if self.executor is not None:
            for out in self.executor.pump():
                self._on_full_outcome(out)
        for entry in self.queue.shed_expired(now):
            self._respond_shed(entry, "deadline-expired")
        if self.autoscaler is not None:
            self._observe_pressure(now)
        if self._drift_guard is not None:
            self._drift_guard.observe(now, self.summary())
        if self.breaker.state == STATE_OPEN:
            while True:
                entry, shed = self.queue.take_if(
                    now, lambda e: e.request.degradable
                )
                for s in shed:
                    self._respond_shed(s, "deadline-expired")
                if entry is None:
                    break
                self._respond_degraded(entry.request, "breaker-open", entry=entry)
        if not self.paused:
            self._dispatch_full(now)
        return len(self._completed) - produced

    def _observe_pressure(self, now: float) -> None:
        """Feed the autoscaler one observation and actuate the new target."""
        c = self.counters
        answered = (
            c["completed_full"] + c["journal_hits"] + c["degraded"]
            + c["rejected"] + c["shed"] + c["failed"]
        )
        shed = c["shed"]
        last_shed, last_answered = self._scale_snapshot
        self._scale_snapshot = (shed, answered)
        self.autoscaler.observe(
            now,
            queue_depth=self.queue.depth,
            shed_delta=shed - last_shed,
            answered_delta=answered - last_answered,
            breaker_open=self.breaker.state == STATE_OPEN,
        )
        if isinstance(self.executor, AutoscalingPool):
            self.executor.sync()

    def _dispatch_full(self, now: float) -> None:
        dispatched = 0
        while self.queue.depth > 0:
            if (
                self.executor is None
                and self.autoscaler is not None
                and dispatched >= self.autoscaler.target
            ):
                # Inline mode: the autoscaler target is the per-pump
                # dispatch budget — the lockstep analogue of N workers.
                break
            if self.executor is not None and not self.executor.has_capacity():
                break
            if not self.breaker.allow_full():
                break
            entry, shed = self.queue.take(now)
            for s in shed:
                self._respond_shed(s, "deadline-expired")
            if entry is None:
                # A half-open allow_full() reserved the canary slot; give it
                # back since there is nothing to probe with.
                self.breaker.cancel_probe()
                break
            entry.attempts += 1
            if entry.attempts > 1:
                self.counters["retries"] += 1
            forced = (
                self._fault_rng is not None
                and self._fault_rng.random()
                < self.config.fault_plan.service_breaker_trip_rate
            )
            if self.executor is not None:
                self._spawn_full(entry, forced)
            else:
                self._run_full_inline(entry, forced)
            dispatched += 1

    def _spawn_full(self, entry: QueueEntry, forced: bool) -> None:
        from repro.harness.executor import WorkItem

        request = entry.request
        spec = {
            "config": request.run_config(),
            "mode": request.mode,
            "heuristic": request.heuristic,
            "threshold": request.threshold,
            "fault_plan": _request_fault_plan(request),
            "strip_worker_faults": entry.attempts > 1,
            "force_crash": forced,
        }
        if self.config.trace_cache_dir is not None:
            spec["trace_cache_dir"] = str(self.config.trace_cache_dir)
        item = WorkItem(
            label=request.request_id,
            kind="service_cell",
            spec=spec,
            shard=self.config.shard_id,
        )
        self._inflight[item.result_key] = entry
        self.executor.spawn_attempt(item, entry.attempts)

    def _run_full_inline(self, entry: QueueEntry, forced: bool) -> None:
        request = entry.request
        if forced:
            self._on_full_failure(entry, FAILURE_CRASH, "forced breaker-trip fault")
            return
        try:
            payload = self._full_runner(request)
        except Exception as exc:  # noqa: BLE001 — taxonomy'd below
            self._on_full_failure(entry, FAILURE_EXCEPTION, repr(exc))
            return
        self._on_full_success(entry, payload)

    # -- outcome plumbing ----------------------------------------------------
    def _on_full_outcome(self, out) -> None:
        entry = self._inflight.pop(out.item.result_key, None)
        if entry is None:
            return  # killed at drain; answered there
        if out.ok:
            self._on_full_success(entry, out.payload)
        else:
            self._on_full_failure(entry, out.failure_kind, str(out.error or ""))

    def _on_full_success(self, entry: QueueEntry, payload: dict) -> None:
        self.breaker.record_success()
        request = entry.request
        if self._journal is not None:
            self._journal.record(request.sim_key(), payload)
        self._respond_full(
            request,
            payload,
            attempts=entry.attempts,
            wait_s=self.clock() - entry.enqueued_at,
        )

    def _on_full_failure(self, entry: QueueEntry, kind: str, detail: str) -> None:
        self.counters["full_failures"] += 1
        self.breaker.record_failure(kind)
        request = entry.request
        if entry.attempts < self.config.max_attempts and not self._draining:
            if self.queue.offer(entry) is None:
                return  # requeued; a later pump retries it
        if request.degradable:
            self._respond_degraded(
                request, f"full-tier-failed:{kind}", entry=entry
            )
        else:
            self._respond(
                SimResponse(
                    request_id=request.request_id,
                    client=request.client,
                    outcome=OUTCOME_FAILED,
                    tier=TIER_NONE,
                    reason=f"{kind}: {detail}" if detail else kind,
                    attempts=entry.attempts,
                ),
                "failed",
            )

    # -- response constructors ----------------------------------------------
    def _respond(self, response: SimResponse, counter: str) -> SimResponse:
        self.counters[counter] += 1
        self._completed.append(response)
        return response

    def _respond_full(
        self, request: SimRequest, payload: dict, attempts: int, wait_s: float
    ) -> SimResponse:
        return self._respond(
            SimResponse(
                request_id=request.request_id,
                client=request.client,
                outcome=OUTCOME_FULL,
                tier=TIER_FULL,
                payload=payload,
                attempts=attempts,
                wait_s=wait_s,
            ),
            "completed_full",
        )

    def _respond_degraded(
        self,
        request: SimRequest,
        reason: str,
        entry: Optional[QueueEntry] = None,
    ) -> SimResponse:
        try:
            payload = self._fast_runner(request)
        except Exception as exc:  # noqa: BLE001 — degrade must not crash serving
            return self._respond(
                SimResponse(
                    request_id=request.request_id,
                    client=request.client,
                    outcome=OUTCOME_FAILED,
                    tier=TIER_NONE,
                    reason=f"fast-tier-error ({reason}): {exc!r}",
                    attempts=entry.attempts if entry else 0,
                ),
                "failed",
            )
        return self._respond(
            SimResponse(
                request_id=request.request_id,
                client=request.client,
                outcome=OUTCOME_DEGRADED,
                tier=TIER_FAST,
                degraded=True,
                reason=reason,
                payload=payload,
                attempts=entry.attempts if entry else 0,
                wait_s=(self.clock() - entry.enqueued_at) if entry else 0.0,
            ),
            "degraded",
        )

    def _respond_rejected(self, request: SimRequest, reason: str) -> SimResponse:
        return self._respond(
            SimResponse(
                request_id=request.request_id,
                client=request.client,
                outcome=OUTCOME_REJECTED,
                tier=TIER_NONE,
                reason=reason,
            ),
            "rejected",
        )

    def _respond_shed(self, entry: QueueEntry, reason: str) -> SimResponse:
        return self._respond(
            SimResponse(
                request_id=entry.request.request_id,
                client=entry.request.client,
                outcome=OUTCOME_SHED,
                tier=TIER_NONE,
                reason=reason,
                attempts=entry.attempts,
                wait_s=self.clock() - entry.enqueued_at,
            ),
            "shed",
        )

    # -- consumption ---------------------------------------------------------
    @property
    def inflight(self) -> int:
        """Requests currently occupying a worker (or inline slot)."""
        return len(self._inflight)

    @property
    def pending(self) -> int:
        """Admitted work still owing a response (queued + in flight)."""
        return self.queue.depth + len(self._inflight)

    def take_completed(self) -> List[SimResponse]:
        """Drain and return responses produced since the last call."""
        out, self._completed = self._completed, []
        return out

    def run_until_idle(self, timeout_s: Optional[float] = None) -> None:
        """Pump until no work is queued or in flight (tests / batch demo)."""
        deadline = self.clock() + timeout_s if timeout_s is not None else None
        while self.queue.depth > 0 or self._inflight:
            self.pump()
            if deadline is not None and self.clock() > deadline:
                raise TimeoutError(
                    f"service not idle within {timeout_s:g}s "
                    f"(queue={self.queue.depth}, inflight={len(self._inflight)})"
                )
            if self.executor is not None and self._inflight:
                time.sleep(self.config.poll_interval_s)

    # -- drain ---------------------------------------------------------------
    def drain(self, deadline_s: Optional[float] = None) -> dict:
        """Stop admission and wind down; every request still gets answered.

        Queued and in-flight work is given ``deadline_s`` (default
        ``config.drain_deadline_s``) to finish through the normal pump.
        Past the deadline, live workers are SIGKILLed — with a checkpoint
        directory configured their latest quantum-boundary snapshot
        survives for a later warm restart — and their requests are served
        degraded (or failed, if not degradable) with reason
        ``drain-killed``; work still queued is shed with reason
        ``drain-deadline``. The response journal is flushed and unlocked.
        Returns the final :meth:`stats` snapshot.
        """
        self._accepting = False
        self._draining = True
        self.paused = False
        budget = deadline_s if deadline_s is not None else self.config.drain_deadline_s
        deadline = self.clock() + budget
        while (self.queue.depth > 0 or self._inflight) and self.clock() < deadline:
            self.pump()
            if self.executor is not None and (self._inflight or self.queue.depth):
                time.sleep(self.config.poll_interval_s)
        if self.executor is not None and self._inflight:
            self.executor.shutdown()
            for key, entry in sorted(self._inflight.items()):
                self.counters["drain_killed"] += 1
                if self._has_checkpoint(key):
                    self.counters["checkpointed"] += 1
                if entry.request.degradable:
                    self._respond_degraded(entry.request, "drain-killed", entry=entry)
                else:
                    self._respond(
                        SimResponse(
                            request_id=entry.request.request_id,
                            client=entry.request.client,
                            outcome=OUTCOME_FAILED,
                            tier=TIER_NONE,
                            reason="drain-killed",
                            attempts=entry.attempts,
                        ),
                        "failed",
                    )
            self._inflight.clear()
        for entry in self.queue.drain_all():
            self._respond_shed(entry, "drain-deadline")
        if self._journal is not None:
            self._journal.close()
        return self.stats()

    def _has_checkpoint(self, result_key: str) -> bool:
        if self.executor is None or self.config.checkpoint_dir is None:
            return False
        from repro.harness.executor import WorkItem

        path = self.executor._checkpoint_path(
            WorkItem(label=result_key, kind="service_cell")
        )
        return path is not None and path.exists()

    # -- observability -------------------------------------------------------
    def stats(self) -> dict:
        """Full telemetry snapshot (counters, queue, breaker, workers)."""
        return {
            "accepting": self._accepting,
            "draining": self._draining,
            "paused": self.paused,
            "queue_depth": self.queue.depth,
            "inflight": len(self._inflight),
            "counters": dict(self.counters),
            "breaker": self.breaker.snapshot(),
            "breaker_transitions": list(self.breaker.transitions),
            "workers": (
                self.executor.live_workers() if self.executor is not None else []
            ),
            "autoscaler": (
                self.autoscaler.summary() if self.autoscaler is not None else None
            ),
            "drift_guard": (
                self._drift_guard.summary()
                if self._drift_guard is not None
                else None
            ),
        }

    def summary(self) -> dict:
        """Cache/coalescing headline, shaped like
        :meth:`~repro.service.router.ShardedService.summary` so serve
        consumers read one schema whether or not ``--shards`` was used.
        An unsharded service has no result store and never coalesces, so
        those fields are structurally present but zero."""
        c = self.counters
        answered = (
            c["completed_full"] + c["degraded"] + c["rejected"]
            + c["shed"] + c["failed"]
        )
        return {
            "shards": 1,
            "submitted": c["submitted"],
            "answered": answered,
            "cache": {
                "journal_hits": c["journal_hits"],
                "store_hits": 0,
                "store_puts": 0,
                "store_corrupt_misses": 0,
            },
            "coalescing": {
                "coalesced_waiters": 0,
                "promotions": 0,
                "shed_waiters": 0,
                "waiter_refusals": 0,
                "remote_leaders": 0,
                "lease_breaks": 0,
                "stale_leases_broken": 0,
            },
            "simulations": c["admitted"],
            "shard_restarts": c["full_failures"],
            "verification": {
                "sampled": 0,
                "verified": 0,
                "divergent": 0,
                "inconclusive": 0,
                "restored": 0,
                "unresolved": 0,
                "corrupted_injected": 0,
            },
            "dlq": {"strikes": 0, "parked": 0, "refused": 0},
            "behavior": {
                "profile_label": self.profile_label,
                "baseline": (
                    getattr(self._drift_guard, "baseline_id", None)
                    if self._drift_guard is not None
                    else None
                ),
                "guard": (
                    self._drift_guard.brief()
                    if self._drift_guard is not None
                    else None
                ),
            },
        }

    def health(self) -> dict:
        """Readiness-probe-sized view: is the service accepting, and at
        what fidelity?"""
        breaker_state = self.breaker.state
        return {
            "ok": self._accepting and not self._draining,
            "degraded_mode": breaker_state != "closed",
            "breaker_state": breaker_state,
            "queue_depth": self.queue.depth,
            "inflight": len(self._inflight),
        }
