"""Deterministic request identity: canonical fields → stable digest → shard.

The sharded front-door (:mod:`repro.service.router`) and the
content-addressed result store (:mod:`repro.service.resultstore`) both key
on *what simulation a request asks for*, not on who asked or how urgently.
This module owns that identity in one place:

* :func:`canonical_fields` projects a :class:`~repro.service.request.
  SimRequest` onto exactly the fields that determine the simulation's
  output, normalized so representational noise cannot split the cache —
  service-level fields (client, priority, deadline, degradability,
  request_id) are excluded; numeric fields are coerced (``2`` and ``2.0``
  digest identically); ``fault_kinds`` are sorted and deduplicated (the
  seeded injector draws per family, so order never matters); fields the
  selected mode ignores are dropped (a *fixed* run's heuristic/threshold,
  an *adts* run's starting policy — mirroring ``SimRequest.sim_key``);
  and a request with no fault kinds normalizes its ``fault_rate`` away.

* :func:`fields_digest` hashes the canonical JSON of those fields
  (sorted keys) with SHA-256. Because every simulation is
  seed-deterministic, equal digests imply byte-identical result payloads —
  which is what makes coalescing and cache hits *answers*, not guesses.

* :func:`shard_of` maps a digest onto one of N shards (leading 32 bits,
  mod N), so a given simulation is always owned by the same shard: its
  result-store segment, trace-cache segment and journal never see writes
  from two shards at once.
"""

from __future__ import annotations

import hashlib
import json

from repro.service.request import SimRequest

#: Bump when canonical_fields changes shape: stored results keyed under an
#: old scheme must re-simulate rather than mis-hit.
IDENTITY_SCHEME = 1


def canonical_fields(request: SimRequest) -> dict:
    """The simulation-identity projection of one request, normalized.

    Two requests with equal projections are asking for the same seeded
    simulation and may share one result; two with different projections
    must never share one.
    """
    mode = str(request.mode)
    fields = {
        "scheme": IDENTITY_SCHEME,
        "mix": str(request.mix),
        "mode": mode,
        "quanta": int(request.quanta),
        "warmup_quanta": int(request.warmup_quanta),
        "quantum_cycles": int(request.quantum_cycles),
        "num_threads": int(request.num_threads),
        "seed": int(request.seed),
    }
    if mode == "adts":
        # ADTS picks its own policies; the request's starting `policy`
        # field is inert (same normalization as SimRequest.sim_key).
        fields["scheduler"] = str(request.heuristic)
        fields["ipc_threshold"] = float(request.threshold)
    else:
        fields["scheduler"] = str(request.policy)
    kinds = sorted(set(str(k) for k in request.fault_kinds))
    if kinds:
        # Injected faults change the simulated outcome, so they are part
        # of identity — but only when any family is actually enabled.
        fields["fault_kinds"] = kinds
        fields["fault_rate"] = float(request.fault_rate)
    return fields


def fields_digest(fields: dict) -> str:
    """SHA-256 hex digest of the canonical JSON of ``fields``."""
    blob = json.dumps(fields, sort_keys=True, default=str).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def request_identity(request: SimRequest) -> str:
    """The stable content digest of the simulation ``request`` asks for."""
    return fields_digest(canonical_fields(request))


def shard_of(digest: str, shards: int) -> int:
    """Deterministic shard owning ``digest`` (0-based, stable across runs)."""
    if shards < 1:
        raise ValueError("shards must be >= 1")
    return int(digest[:8], 16) % shards
