"""Circuit breaker over the full-fidelity worker pool.

Classic three-state breaker, specialised to the harness's failure taxonomy:

* **closed** — full-fidelity dispatch flows normally. Consecutive failures
  (``crash`` / ``timeout`` / ``stalled-heartbeat`` / … — the
  :data:`~repro.harness.errors.FAILURE_KINDS` strings) are counted; any
  success resets the count. Reaching ``failure_threshold`` opens the
  breaker.
* **open** — the detailed engine is presumed down (crashing build, OOM
  loop, poisoned cache …). No full-fidelity work is dispatched; the
  service serves degradable requests from the fast model instead of
  queueing doomed attempts. After ``cooldown_s`` the breaker half-opens.
* **half-open** — exactly one *canary* attempt is allowed through. Its
  success closes the breaker (normal service resumes); its failure
  re-opens it for another cooldown.

Every transition is recorded (from, to, reason, at) so operators can
reconstruct exactly when and why fidelity was lost and restored.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with a single-canary half-open probe."""

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._canary_in_flight = False
        self.transitions: List[dict] = []

    # -- state --------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state; an elapsed cooldown promotes open → half-open."""
        if (
            self._state == STATE_OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._transition(STATE_HALF_OPEN, "cooldown-elapsed")
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    def allow_full(self) -> bool:
        """May one full-fidelity attempt be dispatched right now?

        In half-open state this admits exactly one canary; the caller must
        resolve it via :meth:`record_success` / :meth:`record_failure`
        before another attempt is allowed.
        """
        state = self.state  # may promote open -> half-open
        if state == STATE_CLOSED:
            return True
        if state == STATE_HALF_OPEN and not self._canary_in_flight:
            self._canary_in_flight = True
            return True
        return False

    def cancel_probe(self) -> None:
        """Release a canary slot reserved by :meth:`allow_full` when the
        caller found nothing to probe with (e.g. the queue went empty)."""
        self._canary_in_flight = False

    # -- outcome feedback ----------------------------------------------------
    def record_success(self) -> None:
        """A full-fidelity attempt finished: reset the streak; a canary's
        success closes the breaker."""
        self._consecutive_failures = 0
        self._canary_in_flight = False
        if self._state != STATE_CLOSED:
            self._transition(STATE_CLOSED, "probe-succeeded")

    def record_failure(self, kind: str = "unknown") -> None:
        """A full-fidelity attempt failed (``kind`` from the supervisor's
        taxonomy): extend the streak, opening or re-opening as configured."""
        self._consecutive_failures += 1
        was_canary, self._canary_in_flight = self._canary_in_flight, False
        if self._state == STATE_HALF_OPEN:
            self._reopen(f"probe-failed:{kind}" if was_canary else f"failure:{kind}")
        elif (
            self._state == STATE_CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._reopen(
                f"{self._consecutive_failures} consecutive failures "
                f"(last: {kind})"
            )

    # -- internals -----------------------------------------------------------
    def _reopen(self, reason: str) -> None:
        self._opened_at = self._clock()
        self._transition(STATE_OPEN, reason)

    def _transition(self, to: str, reason: str) -> None:
        self.transitions.append(
            {"from": self._state, "to": to, "reason": reason, "at": self._clock()}
        )
        self._state = to

    def snapshot(self) -> dict:
        """Telemetry view for ``stats()``/``health()``."""
        return {
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "transitions": len(self.transitions),
            "last_transition": self.transitions[-1] if self.transitions else None,
        }
