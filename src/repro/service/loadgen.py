"""Seeded load generation for the overload demo and the service tests.

:func:`generate_burst` turns a :class:`BurstSpec` into a fully deterministic
list of :class:`~repro.service.request.SimRequest` — same spec, same
requests, byte for byte. Combined with the admission queue's property that
admission decisions depend only on queue state (submit the whole burst
while the service is paused, then resume), the service's
(admitted, degraded, shed, rejected) breakdown is reproducible run to run —
the acceptance demo for this subsystem.

The ``expired_fraction`` share of requests carries ``deadline_s=0.0``: their
deadline has lapsed by construction, so they are *deterministically* shed at
dequeue regardless of how fast the pump runs — the knob that makes "shed"
counts exact instead of racy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.service.request import SimRequest, SimResponse
from repro.util.seeds import SeedSequencer


@dataclass(frozen=True)
class BurstSpec:
    """Shape of one synthetic request burst.

    ``expired_fraction`` requests get ``deadline_s=0.0`` (shed at dequeue,
    deterministically); ``degradable_fraction`` of the rest accept a
    fast-model answer. Simulation parameters are kept tiny so even the
    full-tier share of a 200-request burst finishes in seconds.
    """

    requests: int = 200
    seed: int = 0
    clients: Tuple[str, ...] = ("alice", "bob", "carol", "dave")
    degradable_fraction: float = 0.8
    expired_fraction: float = 0.1
    priority_levels: int = 3
    mixes: Tuple[str, ...] = ("mix05",)
    quanta: int = 2
    warmup_quanta: int = 1
    quantum_cycles: int = 256
    num_threads: int = 4

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if not 0.0 <= self.degradable_fraction <= 1.0:
            raise ValueError("degradable_fraction must be in [0, 1]")
        if not 0.0 <= self.expired_fraction <= 1.0:
            raise ValueError("expired_fraction must be in [0, 1]")
        if not self.clients:
            raise ValueError("need at least one client")


def generate_burst(spec: BurstSpec) -> List[SimRequest]:
    """The burst, deterministically derived from ``spec.seed``."""
    rng = SeedSequencer(spec.seed).generator("loadgen")
    out: List[SimRequest] = []
    for i in range(spec.requests):
        expired = bool(rng.random() < spec.expired_fraction)
        degradable = bool(rng.random() < spec.degradable_fraction)
        out.append(
            SimRequest(
                request_id=f"req-{spec.seed:03d}-{i:04d}",
                client=str(spec.clients[int(rng.integers(len(spec.clients)))]),
                mix=str(spec.mixes[int(rng.integers(len(spec.mixes)))]),
                quanta=spec.quanta,
                warmup_quanta=spec.warmup_quanta,
                quantum_cycles=spec.quantum_cycles,
                num_threads=spec.num_threads,
                seed=int(rng.integers(1 << 16)),
                priority=int(rng.integers(spec.priority_levels)),
                deadline_s=0.0 if expired else None,
                degradable=degradable,
            )
        )
    return out


def breakdown(responses: Iterable[SimResponse]) -> Dict[str, object]:
    """Outcome/tier/reason histogram over a batch of responses.

    This is the demo's reproducible fingerprint: two runs of the same
    seeded burst through the same service configuration must produce the
    same breakdown.
    """
    outcomes: Dict[str, int] = {}
    tiers: Dict[str, int] = {}
    reasons: Dict[str, int] = {}
    total = 0
    for r in responses:
        total += 1
        outcomes[r.outcome] = outcomes.get(r.outcome, 0) + 1
        tiers[r.tier] = tiers.get(r.tier, 0) + 1
        if r.reason:
            reasons[r.reason] = reasons.get(r.reason, 0) + 1
    return {
        "total": total,
        "outcomes": dict(sorted(outcomes.items())),
        "tiers": dict(sorted(tiers.items())),
        "reasons": dict(sorted(reasons.items())),
    }
