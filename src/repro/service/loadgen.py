"""Seeded load generation: one-shot bursts and shaped traffic models.

Two generations of tooling live here:

* :func:`generate_burst` turns a :class:`BurstSpec` into a fully
  deterministic *untimed* list of requests — the original overload demo.
  Combined with the admission queue's property that admission decisions
  depend only on queue state (submit the whole burst while the service is
  paused, then resume), the (admitted, degraded, shed, rejected)
  breakdown is reproducible run to run.

* :func:`generate_traffic` turns a :class:`TrafficSpec` into a *timed*
  arrival stream (:class:`TimedRequest`), shaped like production load:
  ``diurnal`` (sinusoidal day/night intensity), ``bursty`` (heavy-tailed
  burst trains — the self-similar shape real request logs have),
  ``ramp`` (linear growth, the launch-day shape) or ``uniform``. Each
  request carries seeded per-client mix / priority / deadline /
  degradability draws, so the stream exercises every admission path.
  Recorded streams round-trip through :func:`save_recording` /
  :func:`load_recording` as checksummed ``repro.storage`` artifacts
  (``repro serve --record`` captures, ``repro replay`` replays).

* :func:`replay_traffic` / :func:`replay_realtime` drive a stream into a
  service. The virtual-clock driver advances time in fixed ticks, so a
  whole campaign — admission, deadline shedding, breaker cooldowns,
  autoscaler decisions — is a deterministic function of (spec, seed,
  config): the property chaos-day reports are pinned on.

The ``expired_fraction`` share of requests carries ``deadline_s=0.0``:
their deadline has lapsed by construction, so they are *deterministically*
shed at dequeue regardless of how fast the pump runs — the knob that makes
"shed" counts exact instead of racy.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.service.request import SimRequest, SimResponse
from repro.util.seeds import SeedSequencer

#: Storage-artifact identity of a recorded traffic stream.
RECORDING_FORMAT = "traffic-recording"
RECORDING_VERSION = 1

#: Shapes :func:`generate_traffic` knows how to produce.
TRAFFIC_SHAPES = ("uniform", "diurnal", "bursty", "ramp")


@dataclass(frozen=True)
class BurstSpec:
    """Shape of one synthetic request burst.

    ``expired_fraction`` requests get ``deadline_s=0.0`` (shed at dequeue,
    deterministically); ``degradable_fraction`` of the rest accept a
    fast-model answer. Simulation parameters are kept tiny so even the
    full-tier share of a 200-request burst finishes in seconds.
    """

    requests: int = 200
    seed: int = 0
    clients: Tuple[str, ...] = ("alice", "bob", "carol", "dave")
    degradable_fraction: float = 0.8
    expired_fraction: float = 0.1
    priority_levels: int = 3
    mixes: Tuple[str, ...] = ("mix05",)
    quanta: int = 2
    warmup_quanta: int = 1
    quantum_cycles: int = 256
    num_threads: int = 4

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if not 0.0 <= self.degradable_fraction <= 1.0:
            raise ValueError("degradable_fraction must be in [0, 1]")
        if not 0.0 <= self.expired_fraction <= 1.0:
            raise ValueError("expired_fraction must be in [0, 1]")
        if not self.clients:
            raise ValueError("need at least one client")


def generate_burst(spec: BurstSpec) -> List[SimRequest]:
    """The burst, deterministically derived from ``spec.seed``."""
    rng = SeedSequencer(spec.seed).generator("loadgen")
    out: List[SimRequest] = []
    for i in range(spec.requests):
        expired = bool(rng.random() < spec.expired_fraction)
        degradable = bool(rng.random() < spec.degradable_fraction)
        out.append(
            SimRequest(
                request_id=f"req-{spec.seed:03d}-{i:04d}",
                client=str(spec.clients[int(rng.integers(len(spec.clients)))]),
                mix=str(spec.mixes[int(rng.integers(len(spec.mixes)))]),
                quanta=spec.quanta,
                warmup_quanta=spec.warmup_quanta,
                quantum_cycles=spec.quantum_cycles,
                num_threads=spec.num_threads,
                seed=int(rng.integers(1 << 16)),
                priority=int(rng.integers(spec.priority_levels)),
                deadline_s=0.0 if expired else None,
                degradable=degradable,
            )
        )
    return out


# ---------------------------------------------------------------------------
# Timed traffic models.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TimedRequest:
    """One arrival in a traffic stream: *when* plus *what*."""

    at_s: float
    request: SimRequest

    def to_json(self) -> dict:
        """Plain-dict form for the recording artifact."""
        return {"at_s": self.at_s, "request": self.request.to_json()}

    @classmethod
    def from_json(cls, payload: dict) -> "TimedRequest":
        """Rebuild from :meth:`to_json` output."""
        return cls(
            at_s=float(payload["at_s"]),
            request=SimRequest.from_json(payload["request"]),
        )


@dataclass(frozen=True)
class TrafficSpec:
    """Shape of a timed, shaped request stream.

    Attributes:
        shape: one of :data:`TRAFFIC_SHAPES`. ``diurnal`` modulates
            intensity sinusoidally over ``day_length_s`` with
            peak/trough ratio ``peak_to_trough``; ``ramp`` grows
            linearly to the same ratio; ``bursty`` packs arrivals into
            heavy-tailed burst trains; ``uniform`` is evenly spread.
        requests / duration_s: stream size and (virtual) length.
        clients / client_weights: per-client arrival mix (weights
            normalize; None = uniform).
        deadline_fraction: share of requests carrying a live relative
            deadline drawn uniformly from ``deadline_range_s``.
        expired_fraction: share with ``deadline_s=0.0`` (deterministic
            sheds).
        fault_fraction / fault_kinds / fault_rate: share of requests
            carrying per-request fault families into their full-fidelity
            attempt (the chaos-day hook).
        Remaining fields mirror :class:`BurstSpec` simulation sizing.
    """

    shape: str = "diurnal"
    requests: int = 200
    duration_s: float = 30.0
    seed: int = 0
    clients: Tuple[str, ...] = ("alice", "bob", "carol", "dave")
    client_weights: Optional[Tuple[float, ...]] = None
    mixes: Tuple[str, ...] = ("mix05",)
    priority_levels: int = 3
    degradable_fraction: float = 0.8
    deadline_fraction: float = 0.25
    deadline_range_s: Tuple[float, float] = (0.5, 5.0)
    expired_fraction: float = 0.05
    peak_to_trough: float = 4.0
    day_length_s: Optional[float] = None
    burst_mean_size: int = 16
    fault_fraction: float = 0.0
    fault_kinds: Tuple[str, ...] = ()
    fault_rate: float = 0.25
    quanta: int = 1
    warmup_quanta: int = 0
    quantum_cycles: int = 128
    num_threads: int = 4

    def __post_init__(self) -> None:
        if self.shape not in TRAFFIC_SHAPES:
            raise ValueError(
                f"unknown traffic shape {self.shape!r}; known: {TRAFFIC_SHAPES}"
            )
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not self.clients:
            raise ValueError("need at least one client")
        if self.client_weights is not None and (
            len(self.client_weights) != len(self.clients)
            or any(w < 0 for w in self.client_weights)
            or sum(self.client_weights) <= 0
        ):
            raise ValueError("client_weights must be non-negative, one per client")
        for frac in (
            self.degradable_fraction, self.deadline_fraction,
            self.expired_fraction, self.fault_fraction,
        ):
            if not 0.0 <= frac <= 1.0:
                raise ValueError("fractions must be in [0, 1]")
        if self.peak_to_trough < 1.0:
            raise ValueError("peak_to_trough must be >= 1")
        if self.deadline_range_s[0] < 0 or self.deadline_range_s[1] < self.deadline_range_s[0]:
            raise ValueError("deadline_range_s must be a non-negative (lo, hi)")
        if self.burst_mean_size < 1:
            raise ValueError("burst_mean_size must be >= 1")


def _shaped_arrivals(spec: TrafficSpec, rng: np.random.Generator) -> np.ndarray:
    """Arrival times for a shape given by an intensity profile.

    Inverse-transform sampling against the cumulative intensity: the i-th
    arrival lands at Λ⁻¹(uᵢ·Λ(T)) with uᵢ strictly increasing seeded
    quantiles, so exactly ``requests`` arrivals land, sorted, matching the
    profile — no rejection loop, fully deterministic.
    """
    grid = np.linspace(0.0, spec.duration_s, 1025)
    if spec.shape == "uniform":
        lam = np.ones_like(grid)
    elif spec.shape == "diurnal":
        period = spec.day_length_s or spec.duration_s
        # Trough at t=0, peak mid-period; λ ranges [1, peak_to_trough].
        lam = 1.0 + (spec.peak_to_trough - 1.0) * (
            1.0 - np.cos(2.0 * np.pi * grid / period)
        ) / 2.0
    elif spec.shape == "ramp":
        lam = 1.0 + (spec.peak_to_trough - 1.0) * grid / spec.duration_s
    else:  # pragma: no cover — guarded by TrafficSpec validation
        raise ValueError(spec.shape)
    cum = np.concatenate([[0.0], np.cumsum((lam[1:] + lam[:-1]) / 2.0)])
    n = spec.requests
    quantiles = (np.arange(n) + rng.uniform(0.02, 0.98, n)) / n * cum[-1]
    return np.interp(quantiles, cum, grid)


def _bursty_arrivals(spec: TrafficSpec, rng: np.random.Generator) -> np.ndarray:
    """Heavy-tailed burst trains: a few big bursts, many small ones.

    Burst sizes follow a Pareto split (the self-similarity stand-in at
    this scale); burst epochs spread over the stream; intra-burst gaps are
    tight exponentials, so queue depth spikes hard and then goes quiet —
    the shape that makes autoscalers and admission control earn their keep.
    """
    n = spec.requests
    n_bursts = max(1, n // spec.burst_mean_size)
    weights = rng.pareto(1.2, n_bursts) + 1.0
    sizes = np.maximum(1, np.floor(weights / weights.sum() * n).astype(int))
    # Largest-remainder top-up so sizes sum to exactly n.
    while sizes.sum() < n:
        sizes[int(np.argmax(weights))] += 1
        weights[int(np.argmax(weights))] /= 2.0
    while sizes.sum() > n:
        big = int(np.argmax(sizes))
        sizes[big] -= 1
    starts = np.sort(rng.uniform(0.0, 0.9 * spec.duration_s, n_bursts))
    mean_gap = spec.duration_s / max(1, n * 8)
    times: List[float] = []
    for start, size in zip(starts, sizes):
        gaps = rng.exponential(mean_gap, int(size))
        times.extend(np.minimum(start + np.cumsum(gaps), spec.duration_s))
    return np.sort(np.asarray(times[:n]))


def generate_traffic(spec: TrafficSpec) -> List[TimedRequest]:
    """The timed stream, deterministically derived from ``spec.seed``."""
    seq = SeedSequencer(spec.seed)
    shape_rng = seq.generator("traffic", spec.shape)
    body_rng = seq.generator("traffic", "requests")
    if spec.shape == "bursty":
        times = _bursty_arrivals(spec, shape_rng)
    else:
        times = _shaped_arrivals(spec, shape_rng)
    weights = None
    if spec.client_weights is not None:
        weights = np.asarray(spec.client_weights, dtype=float)
        weights = weights / weights.sum()
    lo, hi = spec.deadline_range_s
    out: List[TimedRequest] = []
    for i, at in enumerate(times):
        expired = bool(body_rng.random() < spec.expired_fraction)
        if expired:
            deadline: Optional[float] = 0.0
        elif body_rng.random() < spec.deadline_fraction:
            deadline = float(lo + (hi - lo) * body_rng.random())
        else:
            deadline = None
        faulted = spec.fault_kinds and body_rng.random() < spec.fault_fraction
        out.append(
            TimedRequest(
                at_s=float(at),
                request=SimRequest(
                    request_id=f"t{spec.seed:03d}-{i:05d}",
                    client=str(
                        spec.clients[int(body_rng.choice(len(spec.clients), p=weights))]
                    ),
                    mix=str(spec.mixes[int(body_rng.integers(len(spec.mixes)))]),
                    quanta=spec.quanta,
                    warmup_quanta=spec.warmup_quanta,
                    quantum_cycles=spec.quantum_cycles,
                    num_threads=spec.num_threads,
                    seed=int(body_rng.integers(1 << 16)),
                    priority=int(body_rng.integers(spec.priority_levels)),
                    deadline_s=deadline,
                    degradable=bool(body_rng.random() < spec.degradable_fraction),
                    fault_kinds=spec.fault_kinds if faulted else (),
                    fault_rate=spec.fault_rate,
                ),
            )
        )
    return out


def traffic_fingerprint(events: Iterable[TimedRequest]) -> str:
    """Content hash of a stream — the reproducibility witness in reports."""
    blob = json.dumps([e.to_json() for e in events], sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Recorded-traffic capture and replay (repro.storage artifacts).
# ---------------------------------------------------------------------------
def save_recording(
    path, events: Iterable[TimedRequest], meta: Optional[dict] = None
) -> dict:
    """Persist a traffic stream as a checksummed JSON artifact.

    The document stays greppable plain JSON; the embedded ``artifact``
    block (format ``traffic-recording``) makes it auditable by
    ``repro fsck``. Returns the written document.
    """
    from repro.storage import atomic_write_bytes, embed_json_artifact

    events = list(events)
    doc = {
        "kind": RECORDING_FORMAT,
        "count": len(events),
        "duration_s": max((e.at_s for e in events), default=0.0),
        "fingerprint": traffic_fingerprint(events),
        "meta": dict(meta or {}),
        "requests": [e.to_json() for e in events],
    }
    doc = embed_json_artifact(doc, RECORDING_FORMAT, RECORDING_VERSION)
    blob = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    atomic_write_bytes(path, blob.encode("utf-8"))
    return doc


def load_recording(path) -> List[TimedRequest]:
    """Load a recorded stream; raises on damage, sorts by arrival time."""
    from repro.storage import load_json_artifact

    _, doc = load_json_artifact(path, expect_format=RECORDING_FORMAT)
    if "requests" not in doc:
        raise ValueError(f"{path}: not a traffic recording (no 'requests' key)")
    events = [TimedRequest.from_json(entry) for entry in doc["requests"]]
    return sorted(events, key=lambda e: (e.at_s, e.request.request_id))


class VirtualClock:
    """A clock the replay loop owns.

    Ticked explicitly by :func:`replay_traffic`, it makes deadline
    shedding, breaker cooldowns and autoscaler cooldowns functions of the
    *schedule* rather than of host speed. ``auto_advance_s`` lets a final
    drain make progress when no driver loop is ticking anymore (each read
    nudges time forward by a deterministic epsilon, so cooldown- and
    deadline-gated paths cannot spin forever).
    """

    def __init__(self, start_s: float = 0.0) -> None:
        self.now = float(start_s)
        self.auto_advance_s = 0.0

    def __call__(self) -> float:
        self.now += self.auto_advance_s
        return self.now

    def advance(self, dt_s: float) -> float:
        """Tick time forward by ``dt_s`` virtual seconds."""
        self.now += dt_s
        return self.now


def replay_traffic(
    service,
    events: List[TimedRequest],
    clock: VirtualClock,
    tick_s: float = 0.05,
    max_virtual_s: Optional[float] = None,
    time_scale: float = 1.0,
) -> List[SimResponse]:
    """Drive a stream into a service under a virtual clock (lockstep).

    Submits every arrival whose (scaled) time has come, pumps once per
    tick, and collects responses, until the stream is exhausted and the
    service is idle — or ``max_virtual_s`` of virtual time has elapsed
    (the caller then drains; the drain contract still answers everything).
    Deterministic end to end with ``workers=0`` services.
    """
    responses: List[SimResponse] = []
    i = 0
    deadline = (
        clock.now + max_virtual_s if max_virtual_s is not None else None
    )
    while i < len(events) or service.queue.depth > 0 or service.inflight > 0:
        now = clock.advance(tick_s)
        while i < len(events) and events[i].at_s * time_scale <= now:
            immediate = service.submit(events[i].request)
            del immediate  # flows out via take_completed below
            i += 1
        service.pump()
        responses.extend(service.take_completed())
        if deadline is not None and clock.now >= deadline:
            break
        if service.inflight > 0 and getattr(service, "executor", None) is not None:
            time.sleep(service.config.poll_interval_s)
    return responses


def replay_realtime(
    service,
    events: List[TimedRequest],
    time_scale: float = 1.0,
    max_wall_s: float = 600.0,
    clock: Callable[[], float] = time.monotonic,
) -> List[SimResponse]:
    """Drive a stream into a service paced by the wall clock.

    ``time_scale < 1`` compresses the recording (replay a day in a
    minute); the loop exits when the stream is exhausted and the service
    is idle, or after ``max_wall_s`` (the caller then drains).
    """
    t0 = clock()
    i = 0
    responses: List[SimResponse] = []
    while i < len(events) or service.queue.depth > 0 or service.inflight > 0:
        now = clock() - t0
        if now > max_wall_s:
            break
        while i < len(events) and events[i].at_s * time_scale <= now:
            service.submit(events[i].request)
            i += 1
        busy = service.pump()
        responses.extend(service.take_completed())
        if not busy:
            time.sleep(service.config.poll_interval_s)
    return responses


# ---------------------------------------------------------------------------
# Outcome accounting.
# ---------------------------------------------------------------------------
def breakdown(responses: Iterable[SimResponse]) -> Dict[str, object]:
    """Outcome/tier/reason histogram over a batch of responses.

    This is the demo's reproducible fingerprint: two runs of the same
    seeded burst through the same service configuration must produce the
    same breakdown. Beyond the histograms it carries the derived rates
    replay and chaos reports need, so they never recompute them ad hoc:
    ``deadline_miss_rate`` (shed-for-deadline share of all answers),
    ``degraded_share`` (fast-tier share), and ``per_client_refusals``
    (rejected + shed counts by client — the fairness post-mortem view).
    """
    outcomes: Dict[str, int] = {}
    tiers: Dict[str, int] = {}
    reasons: Dict[str, int] = {}
    per_client_refusals: Dict[str, int] = {}
    total = 0
    deadline_misses = 0
    degraded = 0
    for r in responses:
        total += 1
        outcomes[r.outcome] = outcomes.get(r.outcome, 0) + 1
        tiers[r.tier] = tiers.get(r.tier, 0) + 1
        if r.reason:
            reasons[r.reason] = reasons.get(r.reason, 0) + 1
        if r.outcome == "shed" and r.reason.startswith("deadline"):
            deadline_misses += 1
        if r.degraded:
            degraded += 1
        if r.outcome in ("rejected", "shed"):
            per_client_refusals[r.client] = per_client_refusals.get(r.client, 0) + 1
    return {
        "total": total,
        "outcomes": dict(sorted(outcomes.items())),
        "tiers": dict(sorted(tiers.items())),
        "reasons": dict(sorted(reasons.items())),
        "deadline_misses": deadline_misses,
        "deadline_miss_rate": (deadline_misses / total) if total else 0.0,
        "degraded_share": (degraded / total) if total else 0.0,
        "per_client_refusals": dict(sorted(per_client_refusals.items())),
    }
