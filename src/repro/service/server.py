"""The ``repro serve`` loop: JSON-lines in, JSON-lines out.

Transport is deliberately plain stdin/stdout JSONL — no sockets, no new
dependencies, trivially driven from a subprocess in tests and CI. One JSON
object per line in either direction.

Requests (client → service)::

    {"op": "submit", "request": {"request_id": "r1", "mix": "mix05", ...}}
    {"request_id": "r1", ...}          # bare object == submit shorthand
    {"op": "stats"} | {"op": "summary"} | {"op": "health"}
    {"op": "pause"} | {"op": "resume"}
    {"op": "shutdown"}                 # drain and exit

Events (service → client)::

    {"event": "ready", ...}
    {"event": "response", "response": {...}}   # exactly one per request
    {"event": "stats"|"health", ...}
    {"event": "error", "detail": "..."}        # unparseable input line
    {"event": "drained", "stats": {...}}       # last line before exit 0

Lifecycle: SIGTERM/SIGINT (or ``{"op": "shutdown"}``) stops admission and
drains within the configured deadline; EOF on stdin finishes outstanding
work first, then drains. Either way every accepted request has produced its
response before the final ``drained`` event, and the process exits 0.

**Single-threaded by necessity, not just taste.** Input from a real file
descriptor is polled non-blocking from the main loop (``os.read`` +
``O_NONBLOCK``), *not* read by a helper thread: the service forks worker
processes, and a thread parked inside ``stdin.readline()`` holds the
buffered reader's lock across the fork — the child then deadlocks in
``multiprocessing.util._close_stdin()`` trying to take a lock whose owner
does not exist in the child. A reader thread is kept only as a fallback
for fd-less file-likes (in-process tests), which never fork.
"""

from __future__ import annotations

import io
import json
import os
import queue as queue_mod
import signal
import sys
import threading
import time
from typing import IO, List, Optional

from repro.service.loadgen import TimedRequest, save_recording
from repro.service.request import SimRequest
from repro.service.service import SimulationService

_EOF = object()


class ServeLoop:
    """Single-threaded pump around a :class:`SimulationService` (or a
    :class:`~repro.service.router.ShardedService` — same surface),
    interleaving input polling, :meth:`SimulationService.pump`, and
    response emission."""

    def __init__(
        self,
        service: SimulationService,
        infile: Optional[IO] = None,
        outfile: Optional[IO[str]] = None,
        drain_deadline_s: Optional[float] = None,
        record_path: Optional[str] = None,
    ) -> None:
        self.service = service
        self.infile = infile if infile is not None else sys.stdin
        self.outfile = outfile if outfile is not None else sys.stdout
        self.drain_deadline_s = drain_deadline_s
        #: When set, every admitted-for-parsing request is captured with its
        #: arrival offset and written as a ``traffic-recording`` artifact at
        #: drain — the capture half of ``repro serve --record`` /
        #: ``repro replay``.
        self.record_path = record_path
        self._recorded: List[TimedRequest] = []
        self._t0: Optional[float] = None
        try:
            self._fd: Optional[int] = self.infile.fileno()
        except (AttributeError, OSError, io.UnsupportedOperation):
            self._fd = None  # fd-less file-like: thread fallback
        self._buf = b""
        self._lines: "queue_mod.Queue[object]" = queue_mod.Queue()
        self._stop = False
        self._eof = False
        self._auto_id = 0

    # -- plumbing ------------------------------------------------------------
    def _emit(self, obj: dict) -> None:
        self.outfile.write(json.dumps(obj, sort_keys=True) + "\n")
        self.outfile.flush()

    def _emit_drift_events(self) -> None:
        """Surface drift-guard escalations/clears on the event stream so
        operators can correlate them with scale and breaker events."""
        guard = getattr(self.service, "_drift_guard", None)
        if guard is None:
            return
        for event in guard.take_events():
            self._emit({"event": "drift", **event.to_dict()})

    def _read_lines_thread(self) -> None:
        for line in self.infile:
            self._lines.put(line)
        self._lines.put(_EOF)

    def _poll_input(self) -> List[str]:
        """Drain whatever input is available right now, without blocking."""
        if self._fd is None:
            lines: List[str] = []
            while True:
                try:
                    item = self._lines.get_nowait()
                except queue_mod.Empty:
                    return lines
                if item is _EOF:
                    self._eof = True
                    return lines
                lines.append(item)
        while not self._eof:
            try:
                chunk = os.read(self._fd, 65536)
            except BlockingIOError:
                break
            except InterruptedError:
                continue
            if not chunk:
                self._eof = True
                break
            self._buf += chunk
        *complete, self._buf = self._buf.split(b"\n")
        if self._eof and self._buf:
            complete.append(self._buf)  # unterminated final line
            self._buf = b""
        return [c.decode("utf-8", errors="replace") for c in complete]

    def _request_stop(self, signum: int, _frame: object) -> None:
        self._stop = True

    # -- input handling ------------------------------------------------------
    def _handle_line(self, line: str) -> None:
        line = line.strip()
        if not line:
            return
        try:
            payload = json.loads(line)
            if not isinstance(payload, dict):
                raise ValueError("expected a JSON object")
        except ValueError as exc:
            self._emit({"event": "error", "detail": f"bad input line: {exc}"})
            return
        op = payload.get("op", "submit")
        if op == "submit":
            self._handle_submit(payload.get("request", payload))
        elif op == "stats":
            self._emit({"event": "stats", "stats": self.service.stats()})
        elif op == "summary":
            self._emit({"event": "summary", "summary": self.service.summary()})
        elif op == "health":
            self._emit({"event": "health", "health": self.service.health()})
        elif op == "pause":
            self.service.paused = True
            self._emit({"event": "paused"})
        elif op == "resume":
            self.service.paused = False
            self._emit({"event": "resumed"})
        elif op == "shutdown":
            self._stop = True
        elif op == "meta":
            # Descriptive header (e.g. the spec line `repro burst --emit`
            # writes): acknowledge and carry on, so emitted burst files
            # replay straight through `repro serve` unedited.
            self._emit({"event": "meta-ack"})
        else:
            self._emit({"event": "error", "detail": f"unknown op {op!r}"})

    def _handle_submit(self, body: object) -> None:
        if not isinstance(body, dict):
            self._emit({"event": "error", "detail": "submit body must be an object"})
            return
        if "request_id" not in body:
            self._auto_id += 1
            body = dict(body, request_id=f"auto-{self._auto_id:06d}")
        try:
            request = SimRequest.from_json(body)
        except (TypeError, ValueError) as exc:
            self._emit({"event": "error", "detail": f"bad request: {exc}"})
            return
        if self.record_path is not None:
            at = 0.0 if self._t0 is None else time.monotonic() - self._t0
            self._recorded.append(TimedRequest(at_s=at, request=request))
        self.service.submit(request)
        # The response (immediate or eventual) flows out via take_completed.

    # -- main loop -----------------------------------------------------------
    def run(self) -> int:
        """Serve until shutdown; returns the process exit code (0)."""
        if self._fd is not None:
            os.set_blocking(self._fd, False)
        else:
            threading.Thread(target=self._read_lines_thread, daemon=True).start()
        prev_term = signal.signal(signal.SIGTERM, self._request_stop)
        prev_int = signal.signal(signal.SIGINT, self._request_stop)
        self._t0 = time.monotonic()
        try:
            self._emit(
                {
                    "event": "ready",
                    "workers": self.service.config.workers,
                    "queue_capacity": self.service.config.queue_capacity,
                    "shards": getattr(self.service, "num_shards", 1),
                }
            )
            while not self._stop:
                busy = False
                for line in self._poll_input():
                    busy = True
                    self._handle_line(line)
                    if self._stop:
                        break
                if self.service.pump():
                    busy = True
                self._emit_drift_events()
                for response in self.service.take_completed():
                    self._emit({"event": "response", "response": response.to_json()})
                if self._eof and self.service.pending == 0:
                    break  # input exhausted, all work answered: wind down
                if not busy:
                    time.sleep(self.service.config.poll_interval_s)
            stats = self.service.drain(self.drain_deadline_s)
            self._emit_drift_events()
            for response in self.service.take_completed():
                self._emit({"event": "response", "response": response.to_json()})
            if self.record_path is not None:
                save_recording(
                    self.record_path,
                    self._recorded,
                    meta={"source": "serve", "submitted": len(self._recorded)},
                )
                self._emit(
                    {
                        "event": "recorded",
                        "path": str(self.record_path),
                        "requests": len(self._recorded),
                    }
                )
            self._emit(
                {
                    "event": "drained",
                    "stats": stats,
                    "summary": self.service.summary(),
                }
            )
            return 0
        finally:
            signal.signal(signal.SIGTERM, prev_term)
            signal.signal(signal.SIGINT, prev_int)
