"""Request/response types for the simulation service.

A :class:`SimRequest` is one client's ask — "simulate this mix under this
scheduler" — plus the service-level fields admission control needs:
priority, an optional relative deadline, and whether the client will accept
a degraded (fast-model) answer. A :class:`SimResponse` is the service's one
and only answer for that request: every submitted request produces exactly
one response, and every response names its outcome (the
:data:`~repro.harness.errors.OUTCOME_KINDS` taxonomy), the tier that served
it (``full`` / ``fast`` / ``none``), and — when it was not served at full
fidelity — the reason why.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional, Tuple

from repro.harness.errors import (
    OUTCOME_DEGRADED,
    OUTCOME_FULL,
    OUTCOME_KINDS,
)
from repro.harness.journal import RunJournal
from repro.harness.runner import RunConfig

#: Service tiers a response can name.
TIER_FULL = "full"  # detailed cycle-level engine
TIER_FAST = "fast"  # calibrated FastMixModel approximation
TIER_NONE = "none"  # not simulated at all (rejected / shed / failed)

TIER_KINDS = (TIER_FULL, TIER_FAST, TIER_NONE)


@dataclass(frozen=True)
class SimRequest:
    """One simulation request as admitted (or refused) by the service.

    ``deadline_s`` is relative to submission: the service stamps an absolute
    expiry at admission and sheds the job if it is still queued when the
    deadline passes. ``degradable`` marks the request as eligible for the
    degradation ladder — under pressure it may be served by the fast model
    instead of waiting for (or failing with) the detailed engine.
    ``fault_kinds`` carries per-request fault families (e.g. ``worker``)
    into the full-fidelity attempt, for chaos testing.
    """

    request_id: str
    client: str = "anon"
    mix: str = "mix05"
    mode: str = "adts"  # "adts" | "fixed"
    policy: str = "icount"
    heuristic: str = "type3"
    threshold: float = 2.0
    quanta: int = 4
    warmup_quanta: int = 1
    quantum_cycles: int = 512
    num_threads: int = 4
    seed: int = 0
    priority: int = 0
    deadline_s: Optional[float] = None
    degradable: bool = True
    fault_kinds: Tuple[str, ...] = ()
    fault_rate: float = 1.0

    def run_config(self) -> RunConfig:
        """The detailed-engine configuration (validates; may raise
        :class:`~repro.harness.errors.ConfigError`)."""
        return RunConfig(
            mix=self.mix,
            num_threads=self.num_threads,
            seed=self.seed,
            quantum_cycles=self.quantum_cycles,
            quanta=self.quanta,
            warmup_quanta=self.warmup_quanta,
            policy=self.policy,
        )

    def sim_key(self) -> str:
        """Canonical identity of the *simulation* this request asks for.

        Deliberately excludes service-level fields (priority, deadline,
        client): two clients asking for the same run share one journal
        entry.
        """
        return RunJournal.cell_key(
            kind="service",
            mode=self.mode,
            scheduler=self.heuristic if self.mode == "adts" else self.policy,
            ipc_threshold=self.threshold if self.mode == "adts" else None,
            mix=self.mix,
            seed=self.seed,
            num_threads=self.num_threads,
            quantum_cycles=self.quantum_cycles,
            quanta=self.quanta,
            warmup_quanta=self.warmup_quanta,
        )

    @classmethod
    def from_json(cls, payload: dict) -> "SimRequest":
        """Build from a decoded JSON object, ignoring unknown keys."""
        known = set(cls.__dataclass_fields__)
        kw = {k: v for k, v in payload.items() if k in known}
        if "fault_kinds" in kw:
            kw["fault_kinds"] = tuple(kw["fault_kinds"])
        return cls(**kw)

    def to_json(self) -> dict:
        """Plain-dict form; round-trips through :meth:`from_json`.

        ``fault_kinds`` becomes a list (JSON has no tuples) — ``from_json``
        restores it, so recorded traffic replays bit-identically.
        """
        out = asdict(self)
        out["fault_kinds"] = list(out["fault_kinds"])
        return out


@dataclass(frozen=True)
class SimResponse:
    """The service's single answer to one request.

    Invariants (enforced at construction):
      * ``outcome`` is one of :data:`~repro.harness.errors.OUTCOME_KINDS`;
      * ``tier`` is named on every response;
      * a fast-tier response is always explicitly ``degraded`` with a
        non-empty ``reason`` — a degraded answer must never masquerade as
        full fidelity.
    """

    request_id: str
    client: str
    outcome: str
    tier: str
    degraded: bool = False
    reason: str = ""
    payload: Optional[dict] = None
    attempts: int = 0
    wait_s: float = 0.0

    def __post_init__(self) -> None:
        if self.outcome not in OUTCOME_KINDS:
            raise ValueError(f"unknown outcome {self.outcome!r}")
        if self.tier not in TIER_KINDS:
            raise ValueError(f"unknown tier {self.tier!r}")
        if self.tier == TIER_FAST and not (self.degraded and self.reason):
            raise ValueError(
                "fast-tier responses must be marked degraded with a reason"
            )
        if self.outcome == OUTCOME_FULL and self.tier != TIER_FULL:
            raise ValueError("a full outcome must come from the full tier")
        if self.outcome == OUTCOME_DEGRADED and self.tier != TIER_FAST:
            raise ValueError("a degraded outcome must come from the fast tier")

    def to_json(self) -> dict:
        """Plain-dict form for the JSONL wire protocol."""
        return asdict(self)


@dataclass
class QueueEntry:
    """One admitted request while it waits for (or occupies) a worker."""

    request: SimRequest
    seq: int
    enqueued_at: float
    expires_at: Optional[float] = None
    attempts: int = 0
    canary: bool = False

    def sort_key(self) -> tuple:
        """Heap order: priority first (higher serves sooner), earliest
        deadline next (EDF within a priority band), then FIFO."""
        expiry = self.expires_at if self.expires_at is not None else float("inf")
        return (-self.request.priority, expiry, self.seq)

    def expired(self, now: float) -> bool:
        """Whether the deadline has passed while the entry waited."""
        return self.expires_at is not None and now >= self.expires_at
