"""The sharded front-door: route, coalesce, cache, survive crashes.

``ShardedService`` presents the same surface as
:class:`~repro.service.service.SimulationService` (submit / pump /
take_completed / drain / stats / health), so the serve loop, the replay
helpers and the chaos-day harness drive either interchangeably — but
behind the door sit N supervised shards and a content-addressed result
store:

1. **Identity first.** Every valid request is reduced to its simulation
   identity (:func:`~repro.service.identity.request_identity`). Service
   noise — client, priority, deadline — never splits the cache.

2. **Store hit.** If the durable result store already holds the digest,
   the request is answered immediately at full fidelity, byte-identical
   to the simulation that produced the entry. Corrupt entries are
   quarantined and treated as misses (recover-don't-abort): bad bytes are
   never served.

3. **Coalesce.** If the digest is already in flight, the request becomes
   a *waiter* on the in-flight leader — one simulation, many answers.
   A waiter whose own deadline lapses while coalesced is shed with a
   machine-readable reason; no waiter ever hangs.

4. **Lead.** Otherwise the request takes the digest's crash-safe lease
   (dead-PID-stamped leases are broken, mirroring the journal lock) and
   is dispatched to the digest's owning shard — a full
   :class:`SimulationService` with its own admission queue, breaker,
   degradation ladder and supervised worker pool, plus its own journal,
   checkpoint and trace-cache segments so shards never contend on a file.

5. **Promote on failure.** A leader that dies — worker crash, timeout,
   stalled heartbeat, exhausted retries — answers its own requester with
   the shard's refusal, and the first waiter is *promoted* to a fresh
   leader on the same shard; remaining waiters re-coalesce on it. The
   lease stays with this process across promotions. If the lease is held
   by a *different* process (a second front-door sharing the store), the
   group waits for the remote leader's published result, breaking the
   lease and promoting locally the moment the remote holder's PID dies
   or its result fails to appear within ``remote_wait_s``.

Every response a shard produces flows back through the front door, which
fans full-fidelity payloads out to the waiters and persists them in the
store — so the *second* replay of any recorded traffic is pure store
hits: zero re-simulations, byte-identical answers.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.harness.errors import (
    FAILURE_KINDS,
    OUTCOME_DEGRADED,
    OUTCOME_FAILED,
    OUTCOME_FULL,
    ConfigError,
)
from repro.service.dlq import DeadLetterQueue
from repro.service.identity import (
    canonical_fields,
    request_identity,
    shard_of,
)
from repro.service.request import (
    SimRequest,
    SimResponse,
    TIER_FAST,
    TIER_FULL,
    TIER_NONE,
)
from repro.service.resultstore import ResultStore
from repro.service.service import ServiceConfig, SimulationService
from repro.service.verify import (
    ShadowVerifier,
    VERIFY_COUNTERS,
    corrupt_payload,
    payload_digest,
)

#: Front-door counter names (shard counters are aggregated separately).
FRONT_COUNTER_NAMES = (
    "submitted",
    "answered",
    "rejected",
    "store_hits",
    "coalesced_waiters",
    "shed_waiters",
    "waiter_refusals",
    "promotions",
    "remote_leaders",
    "simulations",
    "results_corrupted",
    "dlq_strikes",
    "dlq_parked",
    "dlq_refused",
)

#: Severity order for aggregating per-shard breaker states.
_BREAKER_SEVERITY = {"closed": 0, "half-open": 1, "open": 2}


@dataclass
class _Waiter:
    """One request coalesced onto an in-flight leader."""

    request: SimRequest
    enqueued_at: float
    expires_at: Optional[float]


@dataclass
class _Group:
    """All in-flight interest in one simulation digest.

    ``leader_rid`` is the request_id currently leading the simulation on
    ``shard``; None means the lease is held by another process (remote
    leader) and the whole group is waiting on the store.
    """

    digest: str
    shard: int
    leader_rid: Optional[str]
    leader: Optional[SimRequest]
    created_at: float
    waiters: List[_Waiter] = field(default_factory=list)
    promotions: int = 0


class _QueueView:
    """Duck-typed ``.queue`` for replay helpers: summed shard depth."""

    def __init__(self, owner: "ShardedService") -> None:
        self._owner = owner

    @property
    def depth(self) -> int:
        return sum(s.queue.depth for s in self._owner.shards)


class ShardedService:
    """Sharded, coalescing, store-backed front door over N shard services."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        shards: int = 2,
        store: Union[ResultStore, str, Path, None] = None,
        full_runner: Optional[Callable[[SimRequest], dict]] = None,
        fast_runner: Optional[Callable[[SimRequest], dict]] = None,
        clock: Callable[[], float] = time.monotonic,
        remote_wait_s: float = 30.0,
        verify_rate: float = 0.0,
        verify_seed: Optional[int] = None,
        dlq_threshold: int = 0,
        dlq_dir: Union[str, Path, None] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if remote_wait_s <= 0:
            raise ValueError("remote_wait_s must be positive")
        if dlq_threshold < 0:
            raise ValueError("dlq_threshold must be >= 0")
        self.config = config or ServiceConfig()
        self.clock = clock
        self.remote_wait_s = remote_wait_s
        self.store: Optional[ResultStore] = None
        if isinstance(store, ResultStore):
            self.store = store
        elif store is not None:
            self.store = ResultStore(store, shards=shards)
        self.shards: List[SimulationService] = [
            SimulationService(
                self._shard_config(i),
                full_runner=full_runner,
                fast_runner=fast_runner,
                clock=clock,
            )
            for i in range(shards)
        ]
        self.queue = _QueueView(self)
        self.counters: Dict[str, int] = {n: 0 for n in FRONT_COUNTER_NAMES}
        self._groups: Dict[str, _Group] = {}
        self._leader_rid: Dict[str, str] = {}  # leader request_id -> digest
        self._completed: List[SimResponse] = []
        self._accepting = True
        self._draining = False
        self._paused = False
        # Behaviour observability (duck-typed — this module never imports
        # repro.behavior): optional rolling drift guard plus the label the
        # harness will snapshot this run's profile under.
        self._drift_guard = None
        self.profile_label: Optional[str] = None
        plan = self.config.fault_plan
        plan_seed = plan.seed if plan is not None else 0
        # Silent-corruption injection (chaos campaigns): a seeded draw per
        # full-fidelity result crossing the front door flips one mantissa
        # bit before the payload is served and stored. The injector keeps
        # a private ledger of tainted digests so verification_audit() can
        # prove every event was later caught — the serving path itself
        # never sees the ledger (that would not be *silent*).
        self._corrupt_rate = (
            plan.service_corrupt_result_rate if plan is not None else 0.0
        )
        self._corrupt_rng = random.Random(f"corrupt-result:{plan_seed}")
        self._tainted: Dict[str, str] = {}  # digest -> corrupt payload sha
        self.verifier: Optional[ShadowVerifier] = None
        if verify_rate > 0.0:
            self.verifier = ShadowVerifier(
                rate=verify_rate,
                seed=verify_seed if verify_seed is not None else plan_seed,
                shards=shards,
                store=self.store,
                dispatch=lambda index, probe: self.shards[index].submit(probe),
            )
        self.dlq_threshold = int(dlq_threshold)
        self.dlq: Optional[DeadLetterQueue] = None
        if self.dlq_threshold > 0:
            root = dlq_dir
            if root is None and self.store is not None:
                root = self.store.root / "dlq"
            self.dlq = DeadLetterQueue(root)
        self._strikes: Dict[str, List[dict]] = {}  # digest -> strike history
        if self.store is not None:
            # A predecessor that crashed mid-simulation left its leases
            # behind; break them now (dead/unstamped holders only) rather
            # than stalling their digests behind the remote-wait timeout.
            self.store.break_stale_leases()

    def _shard_config(self, index: int) -> ServiceConfig:
        """Derive shard ``index``'s config: segmented journal, checkpoint
        and trace-cache paths, so no two shards ever share a writer."""
        cfg = self.config
        journal = None
        if cfg.journal_path:
            p = Path(cfg.journal_path)
            journal = p.with_name(f"{p.stem}-s{index:02d}{p.suffix}")
        checkpoint = None
        if cfg.checkpoint_dir:
            checkpoint = Path(cfg.checkpoint_dir) / f"shard-{index:02d}"
        trace_cache = None
        if cfg.trace_cache_dir:
            trace_cache = Path(cfg.trace_cache_dir) / f"shard-{index:02d}"
        return replace(
            cfg,
            shard_id=index,
            journal_path=journal,
            checkpoint_dir=checkpoint,
            trace_cache_dir=trace_cache,
        )

    # -- pass-throughs the serve/replay loops rely on ------------------------
    def attach_drift_guard(self, guard) -> None:
        """Attach a rolling drift guard; fed one summary per pump."""
        self._drift_guard = guard

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def executor(self):
        """Any shard's executor (replay helpers only test for presence)."""
        return next((s.executor for s in self.shards if s.executor is not None), None)

    @property
    def paused(self) -> bool:
        return self._paused

    @paused.setter
    def paused(self, value: bool) -> None:
        self._paused = value
        for shard in self.shards:
            shard.paused = value

    @property
    def inflight(self) -> int:
        """Unanswered work anywhere behind the door (shards + groups)."""
        return sum(s.inflight for s in self.shards) + len(self._groups)

    @property
    def pending(self) -> int:
        """Queued + in-flight + coalesced work still owing a response
        (plus verification probes the pump must still resolve)."""
        return (
            sum(s.pending for s in self.shards)
            + len(self._groups)
            + (self.verifier.inflight if self.verifier is not None else 0)
        )

    # -- admission -----------------------------------------------------------
    def submit(self, request: SimRequest) -> Optional[SimResponse]:
        """Offer one request: store hit, coalesce, or lead a simulation.

        Same contract as :meth:`SimulationService.submit`: an immediate
        disposition returns its response (also appended to the completed
        stream); an admitted request returns None and answers later.
        """
        now = self.clock()
        self.counters["submitted"] += 1
        if not self._accepting:
            return self._refuse(request, "draining")
        try:
            request.run_config()
            if request.mode not in ("adts", "fixed"):
                raise ConfigError("mode", request.mode, "'adts' or 'fixed'")
        except ConfigError as exc:
            return self._refuse(request, f"invalid-request: {exc}")
        digest = request_identity(request)
        if self.dlq is not None and self.dlq.is_parked(digest):
            # A parked poison pill: answer with the machine-readable
            # refusal instead of burning another worker (or hanging a
            # coalesced waiter behind an identity that never completes).
            self.counters["dlq_refused"] += 1
            return self._refuse(request, self.dlq.refusal_reason(digest))
        if self.store is not None:
            payload = self.store.get(digest)
            if payload is not None:
                self.counters["store_hits"] += 1
                return self._respond(
                    SimResponse(
                        request_id=request.request_id,
                        client=request.client,
                        outcome=OUTCOME_FULL,
                        tier=TIER_FULL,
                        payload=payload,
                        attempts=0,
                        wait_s=0.0,
                    )
                )
        group = self._groups.get(digest)
        if group is not None:
            self.counters["coalesced_waiters"] += 1
            group.waiters.append(_Waiter(request, now, self._expiry(request, now)))
            return None
        self._lead(request, digest, now)
        return None

    @staticmethod
    def _expiry(request: SimRequest, now: float) -> Optional[float]:
        return now + request.deadline_s if request.deadline_s is not None else None

    def _lead(self, request: SimRequest, digest: str, now: float) -> None:
        """Install ``request`` as the digest's leader (or remote waiter)."""
        shard_index = shard_of(digest, len(self.shards))
        if self.store is not None and not self.store.acquire_lease(digest):
            # Another process simulates this digest right now; wait for
            # its published result instead of duplicating the work.
            self.counters["remote_leaders"] += 1
            group = _Group(digest, shard_index, None, None, now)
            group.waiters.append(_Waiter(request, now, self._expiry(request, now)))
            self._groups[digest] = group
            return
        self.counters["simulations"] += 1
        self._groups[digest] = _Group(
            digest, shard_index, request.request_id, request, now
        )
        self._leader_rid[request.request_id] = digest
        self.shards[shard_index].submit(request)
        # An immediate shard disposition (rejected / degraded / journal
        # hit) lands in the shard's completed stream and resolves the
        # group on the next pump — one code path for every outcome.

    # -- the pump ------------------------------------------------------------
    def pump(self) -> int:
        """One dispatch iteration across all shards; returns responses
        produced (leader answers fanned out, waiters shed, remote results
        collected)."""
        produced = len(self._completed)
        for shard in self.shards:
            shard.pump()
        self._collect(self.clock())
        now = self.clock()
        self._sweep_waiters(now)
        self._poll_remote(now)
        if self._drift_guard is not None:
            self._drift_guard.observe(now, self.summary())
        return len(self._completed) - produced

    def _collect(self, now: float) -> None:
        for shard in self.shards:
            for response in shard.take_completed():
                self._route_response(response, now)

    def _route_response(self, response: SimResponse, now: float) -> None:
        if self.verifier is not None and self.verifier.owns(response.request_id):
            # Internal re-execution probe: consumed by the verifier, never
            # surfaced — invisible to the request-conservation contract.
            self.verifier.on_response(response)
            return
        digest = self._leader_rid.pop(response.request_id, None)
        group = self._groups.get(digest) if digest is not None else None
        if group is None or group.leader_rid != response.request_id:
            self._respond(response)  # not a live leader: pass through
            return
        self._on_leader_response(group, response, now)

    def _on_leader_response(
        self, group: _Group, response: SimResponse, now: float
    ) -> None:
        digest = group.digest
        if response.outcome == OUTCOME_FULL and response.payload is not None:
            payload = response.payload
            if (
                self._corrupt_rate > 0.0
                and self._accepting
                and self._corrupt_rng.random() < self._corrupt_rate
            ):
                # Injected silent corruption: the result crossing from the
                # compute tier to the serving tier is altered *after* the
                # shard journal recorded the clean value — the store, the
                # requester and every coalesced waiter all see the lie.
                bad = corrupt_payload(payload, self._corrupt_rng)
                if bad is not None:
                    payload = bad
                    self.counters["results_corrupted"] += 1
                    self._tainted[digest] = payload_digest(bad)
                    response = replace(response, payload=payload)
            if self.store is not None and group.leader is not None:
                self.store.put(digest, canonical_fields(group.leader), payload)
                self.store.release_lease(digest)
            del self._groups[digest]
            self._respond(response)
            for w in group.waiters:
                self._respond(
                    SimResponse(
                        request_id=w.request.request_id,
                        client=w.request.client,
                        outcome=OUTCOME_FULL,
                        tier=TIER_FULL,
                        payload=payload,
                        attempts=response.attempts,
                        wait_s=now - w.enqueued_at,
                    )
                )
            if (
                self.verifier is not None
                and group.leader is not None
                and self.verifier.wants(digest)
            ):
                self.verifier.start(digest, group.leader, payload, group.shard)
            return
        self._respond(response)  # the leader's own (non-full) answer
        parked = self._note_strike(group, response)
        if response.outcome == OUTCOME_DEGRADED and response.payload is not None:
            # The shard chose the degradation ladder for this simulation;
            # a promotion storm would re-run the very pressure that caused
            # it. Waiters share the degraded answer, explicitly marked.
            self._dissolve(group)
            for w in group.waiters:
                self._respond(
                    SimResponse(
                        request_id=w.request.request_id,
                        client=w.request.client,
                        outcome=OUTCOME_DEGRADED,
                        tier=TIER_FAST,
                        degraded=True,
                        reason=f"coalesced:{response.reason}",
                        payload=response.payload,
                        attempts=response.attempts,
                        wait_s=now - w.enqueued_at,
                    )
                )
            return
        if parked:
            # The strike that crossed the DLQ threshold: stop feeding this
            # identity workers. Current waiters get the machine-readable
            # refusal now; future submissions are refused at the door.
            self._dissolve(group)
            for w in group.waiters:
                self.counters["waiter_refusals"] += 1
                self._respond(
                    SimResponse(
                        request_id=w.request.request_id,
                        client=w.request.client,
                        outcome="failed",
                        tier=TIER_NONE,
                        reason=f"coalesced:{self.dlq.refusal_reason(group.digest)}",
                        wait_s=now - w.enqueued_at,
                    )
                )
            return
        # The leader died or was refused (crash / timeout / stalled /
        # rejected / shed / failed): promote a follower so the group gets
        # another chance at a real answer. The lease stays with us.
        if group.waiters and not self._draining:
            promoted = group.waiters.pop(0)
            group.promotions += 1
            self.counters["promotions"] += 1
            if response.outcome == OUTCOME_FAILED and len(self.shards) > 1:
                # The full engine died on this shard; try the follower on
                # the next one. If the identity itself is poison it will
                # fail *there too* — exactly the cross-shard evidence the
                # DLQ needs to rule out a sick host.
                group.shard = (group.shard + 1) % len(self.shards)
            group.leader_rid = promoted.request.request_id
            group.leader = promoted.request
            self._leader_rid[promoted.request.request_id] = group.digest
            self.counters["simulations"] += 1
            self.shards[group.shard].submit(promoted.request)
            return
        self._dissolve(group)
        for w in group.waiters:  # draining: refuse, never hang
            self._refuse_waiter(w, response, now)

    # -- poison-pill accounting ----------------------------------------------
    @staticmethod
    def _failure_kind(response: SimResponse) -> Optional[str]:
        """Extract the engine-failure kind a leader response evidences.

        A ``failed`` leader carries ``"<kind>: <detail>"`` (or bare kind)
        from the shard's failure path; a ``degraded`` leader whose reason
        is ``full-tier-failed:<kind>`` means the full engine died and the
        ladder saved the answer — still a strike against the identity.
        Anything outside the FAILURE_KINDS taxonomy (admission rejections,
        deadline sheds, policy refusals) is not engine evidence.
        """
        kind: Optional[str] = None
        reason = response.reason or ""
        if response.outcome == OUTCOME_FAILED:
            kind = reason.split(":", 1)[0].strip()
        elif response.outcome == OUTCOME_DEGRADED and reason.startswith(
            "full-tier-failed:"
        ):
            kind = reason.split(":", 1)[1].strip()
        return kind if kind in FAILURE_KINDS else None

    def _note_strike(self, group: _Group, response: SimResponse) -> bool:
        """Record one engine-failure strike; park at threshold.

        Returns True when this strike parked the digest (the caller then
        refuses the group's waiters instead of promoting one).
        """
        kind = self._failure_kind(response)
        if kind is None:
            return False
        strikes = self._strikes.setdefault(group.digest, [])
        strikes.append(
            {
                "shard": group.shard,
                "request_id": response.request_id,
                "kind": kind,
                "reason": response.reason,
                "attempts": response.attempts,
            }
        )
        self.counters["dlq_strikes"] += 1
        if (
            self.dlq is None
            or len(strikes) < self.dlq_threshold
            or self.dlq.is_parked(group.digest)
            or group.leader is None
        ):
            return False
        # Enrich the strike history with the supervised executors' own
        # restart telemetry for these request_ids: the parked artifact
        # records not just "it failed" but each crash/hang as the worker
        # supervisor saw it.
        rids = {s["request_id"] for s in strikes}
        attempts = list(strikes)
        for shard in self.shards:
            if shard.executor is None:
                continue
            for f in shard.executor.failures_for(rids):
                attempts.append({"source": "executor", **f})
        self.dlq.park(group.digest, canonical_fields(group.leader), kind, attempts)
        self.counters["dlq_parked"] += 1
        return True

    def _dissolve(self, group: _Group) -> None:
        self._groups.pop(group.digest, None)
        if self.store is not None and group.leader is not None:
            self.store.release_lease(group.digest)

    def _refuse_waiter(
        self, waiter: _Waiter, leader_response: SimResponse, now: float
    ) -> None:
        """Mirror a failed leader's refusal onto one waiter, attributed."""
        self.counters["waiter_refusals"] += 1
        reason = leader_response.reason or leader_response.outcome
        self._respond(
            SimResponse(
                request_id=waiter.request.request_id,
                client=waiter.request.client,
                outcome=leader_response.outcome,
                tier=TIER_NONE,
                reason=f"coalesced:{reason}",
                wait_s=now - waiter.enqueued_at,
            )
        )

    def _sweep_waiters(self, now: float) -> None:
        """Shed coalesced waiters whose own deadlines lapsed."""
        for group in self._groups.values():
            if not group.waiters:
                continue
            still: List[_Waiter] = []
            for w in group.waiters:
                if w.expires_at is not None and now >= w.expires_at:
                    self.counters["shed_waiters"] += 1
                    self._respond(
                        SimResponse(
                            request_id=w.request.request_id,
                            client=w.request.client,
                            outcome="shed",
                            tier=TIER_NONE,
                            reason="deadline-expired",
                            wait_s=now - w.enqueued_at,
                        )
                    )
                else:
                    still.append(w)
            group.waiters = still

    def _poll_remote(self, now: float) -> None:
        """Progress groups whose lease is held by another process."""
        if self.store is None:
            return
        for digest in list(self._groups):
            group = self._groups.get(digest)
            if group is None or group.leader_rid is not None:
                continue
            payload = self.store.get(digest)
            if payload is not None:
                del self._groups[digest]
                for w in group.waiters:
                    self.counters["store_hits"] += 1
                    self._respond(
                        SimResponse(
                            request_id=w.request.request_id,
                            client=w.request.client,
                            outcome=OUTCOME_FULL,
                            tier=TIER_FULL,
                            payload=payload,
                            attempts=0,
                            wait_s=now - w.enqueued_at,
                        )
                    )
                continue
            stalled = now - group.created_at > self.remote_wait_s
            if not (self.store.lease_stale(digest) or stalled):
                continue  # remote leader still alive and within budget
            # Dead or stalled remote leader: break its lease and promote
            # the first local waiter to lead a fresh simulation here.
            self.store.break_lease(digest)
            del self._groups[digest]
            if not group.waiters:
                continue
            promoted = group.waiters.pop(0)
            self.counters["promotions"] += 1
            self._lead(promoted.request, digest, now)
            fresh = self._groups.get(digest)
            if fresh is not None:
                fresh.waiters.extend(group.waiters)
            else:  # promotion lost a lease race it cannot win twice
                for w in group.waiters:
                    self.counters["waiter_refusals"] += 1
                    self._respond(
                        SimResponse(
                            request_id=w.request.request_id,
                            client=w.request.client,
                            outcome="failed",
                            tier=TIER_NONE,
                            reason="coalesced:lease-unavailable",
                            wait_s=now - w.enqueued_at,
                        )
                    )

    # -- response plumbing ---------------------------------------------------
    def _respond(self, response: SimResponse) -> SimResponse:
        self.counters["answered"] += 1
        self._completed.append(response)
        return response

    def _refuse(self, request: SimRequest, reason: str) -> SimResponse:
        self.counters["rejected"] += 1
        return self._respond(
            SimResponse(
                request_id=request.request_id,
                client=request.client,
                outcome="rejected",
                tier=TIER_NONE,
                reason=reason,
            )
        )

    def take_completed(self) -> List[SimResponse]:
        """Drain and return responses produced since the last call."""
        out, self._completed = self._completed, []
        return out

    def run_until_idle(self, timeout_s: Optional[float] = None) -> None:
        """Pump until nothing is queued, in flight, or coalesced."""
        deadline = self.clock() + timeout_s if timeout_s is not None else None
        while self.pending > 0:
            self.pump()
            if deadline is not None and self.clock() > deadline:
                raise TimeoutError(
                    f"sharded service not idle within {timeout_s:g}s "
                    f"(pending={self.pending})"
                )
            if self.executor is not None and self.pending > 0:
                time.sleep(self.config.poll_interval_s)

    # -- drain ---------------------------------------------------------------
    def drain(self, deadline_s: Optional[float] = None) -> dict:
        """Stop admission and wind down every shard; answer everything.

        Normal pumping gets the budget first; past it each shard's own
        drain answers its in-flight and queued work (degraded / failed /
        shed, all with reasons), those leader responses fan out through
        the front door, and any still-unresolved coalesced waiters — e.g.
        groups parked on a remote leader — are refused with a
        machine-readable reason. No waiter is ever left hanging.
        """
        self._accepting = False
        self._draining = True
        self.paused = False
        budget = deadline_s if deadline_s is not None else self.config.drain_deadline_s
        deadline = self.clock() + budget
        while self.pending > 0 and self.clock() < deadline:
            self.pump()
            if self.executor is not None and self.pending > 0:
                time.sleep(self.config.poll_interval_s)
        for shard in self.shards:
            shard.drain(max(0.0, deadline - self.clock()))
        self._collect(self.clock())
        if self.verifier is not None:
            # Shadow probes dispatched into now-draining shards come back
            # as refusals; give the pump a few rounds to collect them,
            # then count whatever never answered as inconclusive — drain
            # must not hang on verification.
            for _ in range(3):
                if self.verifier.inflight == 0:
                    break
                for shard in self.shards:
                    shard.pump()
                self._collect(self.clock())
            if self.verifier.inflight:
                self.verifier.abandon_all()
        now = self.clock()
        for digest in list(self._groups):
            group = self._groups.pop(digest)
            if self.store is not None and group.leader is not None:
                self.store.release_lease(digest)
            for w in group.waiters:
                self.counters["waiter_refusals"] += 1
                self._respond(
                    SimResponse(
                        request_id=w.request.request_id,
                        client=w.request.client,
                        outcome="shed",
                        tier=TIER_NONE,
                        reason="drain-coalesced",
                        wait_s=now - w.enqueued_at,
                    )
                )
        self._leader_rid.clear()
        return self.stats()

    # -- observability -------------------------------------------------------
    def _aggregate_counters(self, shard_stats: List[dict]) -> Dict[str, int]:
        agg: Dict[str, int] = {}
        for ss in shard_stats:
            for k, v in ss["counters"].items():
                agg[k] = agg.get(k, 0) + v
        return agg

    def stats(self) -> dict:
        """Aggregated telemetry: front-door, store, and per-shard views."""
        shard_stats = [s.stats() for s in self.shards]
        agg = self._aggregate_counters(shard_stats)
        counters = dict(agg)
        for k, v in self.counters.items():
            counters[f"front_{k}"] = v
        worst = max(
            (ss["breaker"]["state"] for ss in shard_stats),
            key=lambda s: _BREAKER_SEVERITY.get(s, 0),
        )
        transitions: List[dict] = []
        for ss in shard_stats:
            transitions.extend(ss["breaker_transitions"])
        autoscalers = [ss["autoscaler"] for ss in shard_stats if ss["autoscaler"]]
        autoscaler = None
        if autoscalers:
            autoscaler = {
                "target": sum(a["target"] for a in autoscalers),
                "min_workers": sum(a["min_workers"] for a in autoscalers),
                "max_workers": sum(a["max_workers"] for a in autoscalers),
                "scale_ups": sum(a["scale_ups"] for a in autoscalers),
                "scale_downs": sum(a["scale_downs"] for a in autoscalers),
            }
        return {
            "accepting": self._accepting,
            "draining": self._draining,
            "paused": self._paused,
            "shards": shard_stats,
            "queue_depth": self.queue.depth,
            "inflight": self.inflight,
            "coalesced_groups": len(self._groups),
            "counters": counters,
            "breaker": {"state": worst},
            "breaker_transitions": transitions,
            "autoscaler": autoscaler,
            "store": self.store.stats() if self.store is not None else None,
            "verification": (
                dict(self.verifier.counters) if self.verifier is not None else None
            ),
            "dlq": self.dlq.stats() if self.dlq is not None else None,
            "drift_guard": (
                self._drift_guard.summary()
                if self._drift_guard is not None
                else None
            ),
        }

    def summary(self) -> dict:
        """The cache/coalescing headline: what did sharding buy us?"""
        shard_stats = [s.stats() for s in self.shards]
        agg = self._aggregate_counters(shard_stats)
        sc = self.store.counters if self.store is not None else {}
        return {
            "shards": len(self.shards),
            "submitted": self.counters["submitted"],
            "answered": self.counters["answered"],
            "cache": {
                "journal_hits": agg.get("journal_hits", 0),
                "store_hits": self.counters["store_hits"],
                "store_puts": sc.get("puts", 0),
                "store_corrupt_misses": sc.get("corrupt_misses", 0),
            },
            "coalescing": {
                "coalesced_waiters": self.counters["coalesced_waiters"],
                "promotions": self.counters["promotions"],
                "shed_waiters": self.counters["shed_waiters"],
                "waiter_refusals": self.counters["waiter_refusals"],
                "remote_leaders": self.counters["remote_leaders"],
                "lease_breaks": sc.get("lease_breaks", 0),
                "stale_leases_broken": sc.get("stale_leases_broken", 0),
            },
            "simulations": self.counters["simulations"],
            "shard_restarts": agg.get("full_failures", 0),
            "verification": {
                **(
                    dict(self.verifier.counters)
                    if self.verifier is not None
                    else {n: 0 for n in VERIFY_COUNTERS}
                ),
                "corrupted_injected": self.counters["results_corrupted"],
            },
            "dlq": {
                "strikes": self.counters["dlq_strikes"],
                "parked": self.counters["dlq_parked"],
                "refused": self.counters["dlq_refused"],
            },
            "behavior": {
                "profile_label": self.profile_label,
                "baseline": (
                    getattr(self._drift_guard, "baseline_id", None)
                    if self._drift_guard is not None
                    else None
                ),
                "guard": (
                    self._drift_guard.brief()
                    if self._drift_guard is not None
                    else None
                ),
            },
        }

    def verification_audit(self) -> dict:
        """Did the integrity layer catch every injected corruption?

        Compares the injector's private tainted-digest ledger against what
        the store still serves: a digest whose live payload hashes to the
        corrupt sha it was tainted with is an **uncaught** silent
        corruption. A tainted digest is **neutralized** when the store no
        longer serves the corrupt bytes — either *caught* (proven
        divergent, quarantined into evidence) or fail-safe evicted (its
        shadow could not answer, so the entry was dropped rather than
        trusted). Chaos-day's contract folds ``ok`` in, so a campaign with
        corruption injected only passes when every event was neutralized
        and no divergent-marked entry survives.
        """
        uncaught: List[str] = []
        if self.store is not None:
            for digest, bad_sha in sorted(self._tainted.items()):
                live = self.store.peek(digest)
                if live is not None and payload_digest(live) == bad_sha:
                    uncaught.append(digest)
        integ = (
            self.store.integrity_summary() if self.store is not None else {}
        )
        live_divergent = integ.get("divergent_live", 0) + integ.get("invalid", 0)
        dlq_ok = True
        dlq_view: Optional[dict] = None
        if self.dlq is not None:
            # Every in-session park must still be visible (and refusable).
            dlq_ok = len(self.dlq) >= self.counters["dlq_parked"]
            dlq_view = {
                "ok": dlq_ok,
                "parked": len(self.dlq),
                "parked_this_run": self.counters["dlq_parked"],
                "refused": self.counters["dlq_refused"],
            }
        return {
            "ok": not uncaught and live_divergent == 0 and dlq_ok,
            "corrupted_injected": self.counters["results_corrupted"],
            "caught": (
                len(self.verifier.quarantined) if self.verifier is not None else 0
            ),
            "uncaught": uncaught,
            "tainted_digests": len(self._tainted),
            "neutralized": len(self._tainted) - len(uncaught),
            "live_divergent": live_divergent,
            "integrity": integ,
            "counters": (
                dict(self.verifier.counters)
                if self.verifier is not None
                else {n: 0 for n in VERIFY_COUNTERS}
            ),
            "dlq": dlq_view,
        }

    def health(self) -> dict:
        """Readiness-probe view across every shard."""
        shard_health = [s.health() for s in self.shards]
        return {
            "ok": self._accepting and not self._draining,
            "degraded_mode": any(h["degraded_mode"] for h in shard_health),
            "queue_depth": self.queue.depth,
            "inflight": self.inflight,
            "shards": shard_health,
        }
