"""Poison-pill dead-letter queue: park identities that kill workers.

A request whose *identity* deterministically crashes or hangs the full
engine is a poison pill: every retry burns a worker, every promotion burns
a waiter's patience, and — because identical requests coalesce — one hot
poison identity can monopolize a shard's restart budget indefinitely. The
supervised executor contains each individual crash; this module contains
the *pattern*.

The front door records a strike per surfaced leader failure
(crash / timeout / stalled-heartbeat / exception / invariant — the
:data:`~repro.harness.errors.FAILURE_KINDS` taxonomy), across retries
*and* across shards (failed leaders promote onto the next shard, so
repeated strikes are evidence the identity, not the host, is at fault).
At the configured threshold the identity is **parked**: a durable
``dlq-entry`` artifact (checksummed via ``repro.storage``, so ``repro
fsck`` audits it like everything else) captures the canonical request,
the refusal reason and the full attempt history, and from then on the
router answers that identity with an immediate machine-readable refusal
(``dlq-parked:<kind>``) instead of feeding it more workers — no waiter
ever hangs on a poison pill.

Operators manage the queue with ``repro dlq list|retry|purge``: *retry*
un-parks an identity (e.g. after an engine fix) so the next submission
simulates again; *purge* drops every entry.
"""

from __future__ import annotations

import json
import logging
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.storage import (
    ArtifactError,
    StorageError,
    atomic_write_bytes,
    embed_json_artifact,
    load_json_artifact,
)

log = logging.getLogger("repro.dlq")

#: Storage-artifact identity of one parked entry.
DLQ_FORMAT = "dlq-entry"
DLQ_VERSION = 1

#: Stable counter names reported by :meth:`DeadLetterQueue.stats`.
DLQ_COUNTERS = ("parked", "retried", "purged")


class DeadLetterQueue:
    """Durable set of parked (refused-by-policy) request identities.

    ``root`` is the directory holding one ``<digest>.json`` artifact per
    parked identity — conventionally ``<result-store>/dlq``. With
    ``root=None`` the queue is in-memory only: parking still protects the
    running service, but does not survive a restart.
    """

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else None
        self.counters: Dict[str, int] = {n: 0 for n in DLQ_COUNTERS}
        self._parked: Dict[str, dict] = {}
        if self.root is not None and self.root.is_dir():
            self._load()

    def _load(self) -> None:
        """Re-adopt entries a previous process parked (restart survival).

        An unreadable entry is skipped, not served and not deleted: fsck
        owns damaged-artifact handling; the DLQ only refuses what it can
        still prove was parked.
        """
        for path in sorted(self.root.glob("*.json")):
            try:
                _, doc = load_json_artifact(path, expect_format=DLQ_FORMAT)
            except (ArtifactError, OSError, ValueError) as exc:
                log.warning("%s: unreadable dlq entry skipped (%s)", path, exc)
                continue
            digest = doc.get("identity")
            if isinstance(digest, str) and digest:
                self._parked[digest] = doc

    def _path(self, digest: str) -> Optional[Path]:
        return self.root / f"{digest}.json" if self.root is not None else None

    # -- parking -------------------------------------------------------------
    def park(
        self,
        digest: str,
        request_fields: dict,
        reason: str,
        attempts: List[dict],
    ) -> bool:
        """Park ``digest`` with its refusal reason and attempt history.

        Returns True when newly parked. The durable write is best-effort
        (a failed write still parks in-memory and is counted by the
        storage layer's own telemetry): refusing poison now matters more
        than remembering it across restarts.
        """
        if digest in self._parked:
            return False
        entry = {
            "identity": digest,
            "request": request_fields,
            "reason": reason,
            "attempts": list(attempts),
            "parked_at": time.time(),
        }
        self._parked[digest] = entry
        self.counters["parked"] += 1
        path = self._path(digest)
        if path is not None:
            doc = embed_json_artifact(entry, DLQ_FORMAT, DLQ_VERSION)
            blob = (json.dumps(doc, indent=2, sort_keys=True) + "\n").encode()
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                atomic_write_bytes(path, blob)
            except (StorageError, OSError) as exc:
                log.warning("%s: dlq entry not persisted (%s)", path, exc)
        log.warning("identity %s… parked in the DLQ: %s", digest[:12], reason)
        return True

    def is_parked(self, digest: str) -> bool:
        """Whether ``digest`` is currently refused by policy."""
        return digest in self._parked

    def refusal_reason(self, digest: str) -> str:
        """The machine-readable refusal the router answers with."""
        entry = self._parked.get(digest)
        reason = entry.get("reason") if entry else None
        return f"dlq-parked:{reason}" if reason else "dlq-parked"

    # -- management (the `repro dlq` surface) --------------------------------
    def entries(self) -> List[dict]:
        """Every parked entry, digest-sorted (deterministic listings)."""
        return [self._parked[d] for d in sorted(self._parked)]

    def retry(self, digest: str) -> bool:
        """Un-park ``digest`` so its next submission simulates again.

        Idempotent across concurrent managers: an entry another process
        already removed (FileNotFoundError on unlink) still counts as
        successfully retried here.
        """
        entry = self._parked.pop(digest, None)
        path = self._path(digest)
        removed_file = False
        if path is not None:
            try:
                path.unlink()
                removed_file = True
            except FileNotFoundError:
                pass
            except OSError as exc:
                log.warning("%s: dlq entry not removed (%s)", path, exc)
        if entry is None and not removed_file:
            return False
        self.counters["retried"] += 1
        return True

    def purge(self) -> int:
        """Drop every entry; returns how many were removed."""
        removed = 0
        for digest in list(self._parked):
            self._parked.pop(digest, None)
            path = self._path(digest)
            if path is not None:
                try:
                    path.unlink()
                except OSError:
                    pass
            removed += 1
        self.counters["purged"] += removed
        return removed

    def __len__(self) -> int:
        return len(self._parked)

    # -- observability -------------------------------------------------------
    def stats(self) -> dict:
        """Telemetry snapshot: root, live parked count, lifetime counters."""
        return {
            "root": str(self.root) if self.root is not None else None,
            "parked": len(self._parked),
            "counters": dict(self.counters),
        }
