"""Bounded, priority- and deadline-aware admission queue.

The queue is the service's backpressure boundary: it is *bounded* (a full
queue refuses new work with a machine-readable reason instead of growing
until the process OOMs), *fair* (a per-client cap stops one hot client from
occupying every slot and starving the rest), *priority-aware* (higher
priority dequeues first; EDF within a priority band; FIFO last), and
*deadline-aware* (a job whose deadline passed while it waited is shed at
dequeue — simulating an answer nobody is still waiting for wastes a
worker).

Admission decisions depend only on queue state, never on wall-clock
arrival jitter, so a burst submitted before any dequeue yields a fully
deterministic admitted/refused breakdown — the property the overload demo
and the hypothesis tests pin down.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.service.request import QueueEntry

#: Machine-readable refusal reasons (`` reject_reason`` on a refused offer).
REASON_QUEUE_FULL = "queue-full"
REASON_CLIENT_QUOTA = "client-quota"


class AdmissionQueue:
    """Bounded priority queue with per-client fairness caps.

    ``capacity`` bounds total queued entries. ``per_client_cap`` bounds one
    client's share of those slots (defaults to half the capacity, at least
    one) — the knob that keeps a single hot client from starving everyone
    else.
    """

    def __init__(self, capacity: int, per_client_cap: Optional[int] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        if per_client_cap is None:
            per_client_cap = max(1, capacity // 2)
        if per_client_cap < 1:
            raise ValueError("per_client_cap must be >= 1")
        self.per_client_cap = per_client_cap
        self._heap: List[Tuple[tuple, QueueEntry]] = []
        self._per_client: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def depth(self) -> int:
        return len(self._heap)

    def client_depth(self, client: str) -> int:
        """How many of the queued entries belong to ``client``."""
        return self._per_client.get(client, 0)

    def offer(self, entry: QueueEntry) -> Optional[str]:
        """Try to admit ``entry``; returns None on success or the refusal
        reason (:data:`REASON_QUEUE_FULL` / :data:`REASON_CLIENT_QUOTA`)."""
        if len(self._heap) >= self.capacity:
            return REASON_QUEUE_FULL
        client = entry.request.client
        if self._per_client.get(client, 0) >= self.per_client_cap:
            return REASON_CLIENT_QUOTA
        heapq.heappush(self._heap, (entry.sort_key(), entry))
        self._per_client[client] = self._per_client.get(client, 0) + 1
        return None

    def take(self, now: float) -> Tuple[Optional[QueueEntry], List[QueueEntry]]:
        """Pop the best non-expired entry; expired entries met on the way
        are shed. Returns ``(entry_or_None, shed_entries)``."""
        shed: List[QueueEntry] = []
        while self._heap:
            _, entry = heapq.heappop(self._heap)
            self._uncount(entry)
            if entry.expired(now):
                shed.append(entry)
                continue
            return entry, shed
        return None, shed

    def shed_expired(self, now: float) -> List[QueueEntry]:
        """Remove and return every queued entry whose deadline has passed
        (without dequeuing live work)."""
        shed = [e for _, e in self._heap if e.expired(now)]
        if shed:
            self._heap = [(k, e) for k, e in self._heap if not e.expired(now)]
            heapq.heapify(self._heap)
            for entry in shed:
                self._uncount(entry)
        return shed

    def take_if(self, now: float, predicate) -> Tuple[Optional[QueueEntry], List[QueueEntry]]:
        """Pop the best non-expired entry satisfying ``predicate``; entries
        that fail the predicate stay queued in order."""
        kept: List[Tuple[tuple, QueueEntry]] = []
        shed: List[QueueEntry] = []
        found: Optional[QueueEntry] = None
        while self._heap:
            key, entry = heapq.heappop(self._heap)
            if entry.expired(now):
                self._uncount(entry)
                shed.append(entry)
                continue
            if predicate(entry):
                self._uncount(entry)
                found = entry
                break
            kept.append((key, entry))
        for key_entry in kept:
            heapq.heappush(self._heap, key_entry)
        return found, shed

    def drain_all(self) -> List[QueueEntry]:
        """Remove and return everything still queued (drain teardown)."""
        entries = [e for _, e in sorted(self._heap)]
        self._heap = []
        self._per_client = {}
        return entries

    def _uncount(self, entry: QueueEntry) -> None:
        client = entry.request.client
        left = self._per_client.get(client, 0) - 1
        if left <= 0:
            self._per_client.pop(client, None)
        else:
            self._per_client[client] = left
