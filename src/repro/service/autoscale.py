"""Queue-driven worker autoscaling for the simulation service.

The SMT scheduling literature's lesson, lifted to the serving layer:
resource shares must track observed per-thread *pressure*, not a static
allocation. Here the "threads" are supervised worker processes and the
pressure signals are the ones the service already measures — admission
queue depth, deadline-miss (shed) rate over a sliding window, and the
circuit breaker's state.

Two pieces:

* :class:`Autoscaler` — the pure decision state machine. Fed one
  observation per service pump (``observe``), it maintains a sliding
  window, up/down pressure streaks (hysteresis: a single spike never
  scales, only *sustained* pressure does), a cooldown between scale
  events, and hard min/max bounds. It is clock-agnostic — ``now`` comes
  in with each observation — so it is exactly as deterministic as its
  input stream, which is what lets chaos-day campaigns under a virtual
  clock reproduce their scale-event telemetry byte for byte.

* :class:`AutoscalingPool` — the actuator: wraps a
  :class:`~repro.harness.executor.SupervisedExecutor` with the same
  streaming API the service already speaks, translating the scaler's
  target into the executor's ``soft_cap``. **Scale-down never kills a
  worker**: lowering the cap only stops new spawns; in-flight attempts
  run to completion (or to the drain deadline, where the existing
  checkpoint/kill machinery applies). A scale-down therefore cannot
  strand an admitted request — the drain contract survives autoscaling.

With ``workers=0`` (inline full tier) there is no pool to actuate; the
service instead uses the scaler's target as its per-pump dispatch budget,
so autoscaler behaviour is testable deterministically without processes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Deque, List, Optional, Tuple


@dataclass(frozen=True)
class AutoscalerConfig:
    """Autoscaler knobs.

    Attributes:
        min_workers / max_workers: hard bounds on the worker target.
        initial_workers: starting target (None = ``min_workers``).
        up_queue_depth: queue depth at/above which one observation counts
            as up-pressure.
        down_queue_depth: depth at/below which an observation counts as
            down-pressure (only when no deadline was missed in the
            window).
        miss_rate_threshold: deadline-miss share (shed / answered over
            the window) that counts as up-pressure regardless of depth.
        window: observations kept in the sliding miss-rate window.
        up_consecutive / down_consecutive: hysteresis — consecutive
            pressured observations required before acting. A neutral
            observation resets both streaks, so an oscillating queue
            (spike, empty, spike, empty) never flaps the pool.
        cooldown_s: minimum time between two scale events, in whichever
            clock feeds ``observe`` — a second anti-flap guard.
        step_up / step_down: target delta per event (scale-up defaults
            to a bigger step than scale-down: adding capacity late is
            worse than shedding it late).
        hold_open_breaker: with the circuit breaker open the full tier
            is presumed down — scaling up would only spawn more doomed
            attempts, so the scaler freezes until the breaker recovers.
        max_events: scale events retained in telemetry (totals are
            always exact; only the event list is bounded).
    """

    min_workers: int = 1
    max_workers: int = 8
    initial_workers: Optional[int] = None
    up_queue_depth: int = 8
    down_queue_depth: int = 1
    miss_rate_threshold: float = 0.05
    window: int = 16
    up_consecutive: int = 2
    down_consecutive: int = 6
    cooldown_s: float = 0.5
    step_up: int = 2
    step_down: int = 1
    hold_open_breaker: bool = True
    max_events: int = 256

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if self.max_workers < self.min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if self.initial_workers is not None and not (
            self.min_workers <= self.initial_workers <= self.max_workers
        ):
            raise ValueError("initial_workers must lie within [min, max]")
        if self.up_queue_depth < 1:
            raise ValueError("up_queue_depth must be >= 1")
        if self.down_queue_depth < 0:
            raise ValueError("down_queue_depth must be >= 0")
        if not 0.0 <= self.miss_rate_threshold <= 1.0:
            raise ValueError("miss_rate_threshold must be in [0, 1]")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.up_consecutive < 1 or self.down_consecutive < 1:
            raise ValueError("hysteresis streaks must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        if self.step_up < 1 or self.step_down < 1:
            raise ValueError("scale steps must be >= 1")


@dataclass(frozen=True)
class ScaleEvent:
    """One committed change of the worker target."""

    at_s: float
    from_target: int
    to_target: int
    reason: str  # "queue-depth" | "deadline-misses" | "idle"

    def to_dict(self) -> dict:
        """JSON-serializable form for telemetry."""
        return asdict(self)


class Autoscaler:
    """Sliding-window, hysteresis-guarded worker-target state machine."""

    def __init__(self, config: Optional[AutoscalerConfig] = None) -> None:
        self.config = config or AutoscalerConfig()
        cfg = self.config
        self.target = (
            cfg.initial_workers if cfg.initial_workers is not None else cfg.min_workers
        )
        self.events: List[ScaleEvent] = []
        self.scale_ups = 0
        self.scale_downs = 0
        self._up_streak = 0
        self._down_streak = 0
        self._last_event_at: Optional[float] = None
        # (shed_delta, answered_delta) per observation, for the miss rate.
        self._window: Deque[Tuple[int, int]] = deque(maxlen=cfg.window)

    # -- signal intake -------------------------------------------------------
    def observe(
        self,
        now: float,
        queue_depth: int,
        shed_delta: int = 0,
        answered_delta: int = 0,
        breaker_open: bool = False,
    ) -> int:
        """Feed one observation; returns the (possibly updated) target.

        ``shed_delta`` / ``answered_delta`` are the *increments* since the
        previous observation (the service computes them from its counters),
        so the window's miss rate covers exactly the last ``window``
        observations regardless of pump cadence.
        """
        cfg = self.config
        self._window.append((max(0, shed_delta), max(0, answered_delta)))
        if breaker_open and cfg.hold_open_breaker:
            # Full tier presumed down: more workers would just fail faster.
            self._up_streak = 0
            self._down_streak = 0
            return self.target
        miss_rate = self.miss_rate()
        if queue_depth >= cfg.up_queue_depth or miss_rate >= cfg.miss_rate_threshold:
            self._up_streak += 1
            self._down_streak = 0
            if self._up_streak >= cfg.up_consecutive:
                reason = (
                    "deadline-misses"
                    if miss_rate >= cfg.miss_rate_threshold
                    else "queue-depth"
                )
                self._scale(now, self.target + cfg.step_up, reason)
        elif queue_depth <= cfg.down_queue_depth and miss_rate == 0.0:
            self._down_streak += 1
            self._up_streak = 0
            if self._down_streak >= cfg.down_consecutive:
                self._scale(now, self.target - cfg.step_down, "idle")
        else:
            # Neutral band: neither streak survives it (hysteresis).
            self._up_streak = 0
            self._down_streak = 0
        return self.target

    def miss_rate(self) -> float:
        """Deadline-miss share over the window: shed / (shed + answered)."""
        shed = sum(s for s, _ in self._window)
        answered = sum(a for _, a in self._window)
        total = shed + answered
        return (shed / total) if total else 0.0

    def _scale(self, now: float, desired: int, reason: str) -> None:
        cfg = self.config
        if (
            self._last_event_at is not None
            and now - self._last_event_at < cfg.cooldown_s
        ):
            return  # cooling down; streak stays primed for the next tick
        desired = max(cfg.min_workers, min(cfg.max_workers, desired))
        if desired == self.target:
            return  # already pinned at a bound
        event = ScaleEvent(
            at_s=now, from_target=self.target, to_target=desired, reason=reason
        )
        if desired > self.target:
            self.scale_ups += 1
        else:
            self.scale_downs += 1
        self.target = desired
        self.events.append(event)
        if len(self.events) > cfg.max_events:
            del self.events[: len(self.events) - cfg.max_events]
        self._last_event_at = now
        self._up_streak = 0
        self._down_streak = 0

    # -- telemetry -----------------------------------------------------------
    def summary(self) -> dict:
        """Scale-event telemetry for ``SimulationService.stats()`` and the
        chaos-campaign report."""
        return {
            "target": self.target,
            "min_workers": self.config.min_workers,
            "max_workers": self.config.max_workers,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "miss_rate_window": round(self.miss_rate(), 6),
            "events": [e.to_dict() for e in self.events],
        }


class AutoscalingPool:
    """A :class:`~repro.harness.executor.SupervisedExecutor` whose
    concurrency follows an :class:`Autoscaler` target.

    Speaks the executor's streaming API (``has_capacity`` /
    ``spawn_attempt`` / ``pump`` / ``shutdown`` / ``live_workers``) by
    delegation, so :class:`~repro.service.SimulationService` uses it as a
    drop-in pool. ``sync()`` pushes the current target into the
    executor's ``soft_cap`` — the only actuation there is. Nothing is
    ever killed on scale-down; the cap only gates *new* spawns.
    """

    def __init__(self, executor, scaler: Autoscaler) -> None:
        self.executor = executor
        self.scaler = scaler
        self.sync()

    def sync(self) -> None:
        """Apply the scaler's current target as the pool's soft cap."""
        self.executor.soft_cap = self.scaler.target

    def has_capacity(self) -> bool:
        """Whether a new attempt may spawn under the current soft cap."""
        return self.executor.has_capacity()

    def __getattr__(self, name: str):
        # Everything else (spawn_attempt, pump, shutdown, live_workers,
        # failures, active, _checkpoint_path, ...) is the executor's.
        return getattr(self.executor, name)
