"""Render experiment results into Markdown.

Turns the ``results/*.json`` payloads the benchmarks write into the table
and series sections EXPERIMENTS.md uses, so paper-vs-measured reports can
be regenerated mechanically after a re-run.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Sequence, Union


def md_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """A GitHub-flavoured Markdown table."""

    def fmt(v) -> str:
        if isinstance(v, float):
            return f"{v:.3f}"
        return str(v)

    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(fmt(v) for v in row) + " |")
    return "\n".join(lines)


def md_series(name: str, xs: Sequence, ys: Sequence[float]) -> str:
    """One figure series as inline code (x=y pairs)."""
    pairs = ", ".join(f"{x}={y:.3f}" if isinstance(y, float) else f"{x}={y}"
                      for x, y in zip(xs, ys))
    return f"`{name}`: {pairs}"


def render_table1(payload: Dict) -> str:
    """T1 payload -> Markdown section."""
    rows = [[r["policy"], r["mean_ipc"]] for r in payload["rows"]]
    return "### T1 — fixed fetch policies\n\n" + md_table(["policy", "mean IPC"], rows)


def render_grid(payload: Dict, metric: str = "ipc_vs_threshold") -> str:
    """F8-style payload -> per-heuristic series lines."""
    out: List[str] = [f"### {payload.get('experiment', 'grid')} — {metric}", ""]
    thresholds = payload["thresholds"]
    for h, ys in payload[metric].items():
        out.append("- " + md_series(h, thresholds, ys))
    return "\n".join(out)


def render_results_dir(results_dir: Union[str, pathlib.Path]) -> str:
    """Render every recognized result file into one Markdown document."""
    results = pathlib.Path(results_dir)
    sections: List[str] = ["# Benchmark results\n"]
    for path in sorted(results.glob("*.json")):
        payload = json.loads(path.read_text())
        if path.stem.startswith("T1"):
            sections.append(render_table1(payload))
        elif path.stem.startswith("F8") and "ipc_vs_threshold" in payload:
            sections.append(render_grid(payload))
        else:
            # Generic: flat scalars as a two-column table.
            flat = {
                k: v for k, v in payload.items()
                if isinstance(v, (int, float, str))
            }
            if flat:
                sections.append(
                    f"### {path.stem}\n\n"
                    + md_table(["key", "value"], sorted(flat.items()))
                )
            else:
                sections.append(f"### {path.stem}\n\n(see `{path.name}`)")
    return "\n\n".join(sections) + "\n"
