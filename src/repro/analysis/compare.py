"""Fixed-vs-adaptive comparison with uncertainty estimates.

Single-number IPC comparisons on short windows are noisy; these helpers
compare *per-quantum paired* series (same workload, same seed) and put a
bootstrap interval on the difference, so EXPERIMENTS.md can say whether an
observed gain is real.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np


def paired_gain(baseline: Sequence[float], treatment: Sequence[float]) -> float:
    """Relative mean gain of treatment over baseline (aligned quanta)."""
    b = float(np.mean(baseline))
    t = float(np.mean(treatment))
    return t / b - 1.0 if b else 0.0


def bootstrap_mean_diff(
    baseline: Sequence[float],
    treatment: Sequence[float],
    n_boot: int = 2000,
    seed: int = 0,
    ci: float = 0.95,
) -> Tuple[float, float, float]:
    """Bootstrap CI on mean(treatment) - mean(baseline).

    Returns (point_estimate, lo, hi). Resamples quanta independently per
    arm (the runs share a workload seed but diverge microarchitecturally,
    so pairing per index would overstate precision).
    """
    if not 0.0 < ci < 1.0:
        raise ValueError("ci must be in (0, 1)")
    rng = np.random.default_rng(seed)
    b = np.asarray(baseline, dtype=float)
    t = np.asarray(treatment, dtype=float)
    point = float(t.mean() - b.mean())
    diffs = np.empty(n_boot)
    for i in range(n_boot):
        diffs[i] = (
            t[rng.integers(0, t.size, t.size)].mean()
            - b[rng.integers(0, b.size, b.size)].mean()
        )
    alpha = (1.0 - ci) / 2.0
    lo, hi = np.quantile(diffs, [alpha, 1.0 - alpha])
    return point, float(lo), float(hi)


@dataclass
class GainReport:
    """Comparison of one adaptive run against one fixed run."""

    mix: str
    fixed_ipc: float
    adaptive_ipc: float
    gain: float
    diff_ci: Tuple[float, float, float]
    significant: bool

    def as_dict(self) -> dict:
        """JSON-friendly view."""
        return {
            "mix": self.mix,
            "fixed_ipc": self.fixed_ipc,
            "adaptive_ipc": self.adaptive_ipc,
            "gain": self.gain,
            "diff": self.diff_ci[0],
            "ci_lo": self.diff_ci[1],
            "ci_hi": self.diff_ci[2],
            "significant": self.significant,
        }


def compare_fixed_vs_adaptive(
    mix: str,
    fixed_quantum_ipcs: Sequence[float],
    adaptive_quantum_ipcs: Sequence[float],
    seed: int = 0,
) -> GainReport:
    """Build a :class:`GainReport`; 'significant' means the bootstrap CI on
    the mean difference excludes zero."""
    point, lo, hi = bootstrap_mean_diff(
        fixed_quantum_ipcs, adaptive_quantum_ipcs, seed=seed
    )
    return GainReport(
        mix=mix,
        fixed_ipc=float(np.mean(fixed_quantum_ipcs)),
        adaptive_ipc=float(np.mean(adaptive_quantum_ipcs)),
        gain=paired_gain(fixed_quantum_ipcs, adaptive_quantum_ipcs),
        diff_ci=(point, lo, hi),
        significant=not (lo <= 0.0 <= hi),
    )
