"""Switch-event analytics over an ADTS run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.history import SwitchEvent

Transition = Tuple[str, str]


def switch_matrix(events: Sequence[SwitchEvent]) -> Dict[Transition, int]:
    """Counts of each (from, to) policy transition."""
    matrix: Dict[Transition, int] = {}
    for e in events:
        key = (e.from_policy, e.to_policy)
        matrix[key] = matrix.get(key, 0) + 1
    return matrix


def policy_residency(quantum_history) -> Dict[str, int]:
    """Quanta spent under each policy (from the pipeline's history)."""
    residency: Dict[str, int] = {}
    for q in quantum_history:
        residency[q.policy] = residency.get(q.policy, 0) + 1
    return residency


def transition_quality(events: Sequence[SwitchEvent]) -> Dict[Transition, Dict[str, float]]:
    """Per-transition benign/malignant breakdown."""
    out: Dict[Transition, Dict[str, float]] = {}
    for e in events:
        key = (e.from_policy, e.to_policy)
        entry = out.setdefault(key, {"benign": 0, "malignant": 0, "pending": 0})
        if e.benign is True:
            entry["benign"] += 1
        elif e.benign is False:
            entry["malignant"] += 1
        else:
            entry["pending"] += 1
    for entry in out.values():
        judged = entry["benign"] + entry["malignant"]
        entry["benign_probability"] = entry["benign"] / judged if judged else 0.0
    return out


@dataclass
class SwitchingReport:
    """Everything Figure 7 summarizes, for one run."""

    num_switches: int
    benign_probability: float
    matrix: Dict[Transition, int] = field(default_factory=dict)
    residency: Dict[str, int] = field(default_factory=dict)
    quality: Dict[Transition, Dict[str, float]] = field(default_factory=dict)
    low_throughput_quanta: int = 0
    missed_decisions: int = 0
    mean_decision_latency: float = 0.0

    def most_common_transition(self) -> Transition:
        """The (from, to) pair with the most switches."""
        if not self.matrix:
            return ("", "")
        return max(self.matrix, key=self.matrix.get)

    def as_dict(self) -> dict:
        """JSON-friendly view."""
        return {
            "num_switches": self.num_switches,
            "benign_probability": self.benign_probability,
            "matrix": {f"{a}->{b}": v for (a, b), v in self.matrix.items()},
            "residency": self.residency,
            "low_throughput_quanta": self.low_throughput_quanta,
            "missed_decisions": self.missed_decisions,
            "mean_decision_latency": self.mean_decision_latency,
        }


def analyze_controller(controller, quantum_history=None) -> SwitchingReport:
    """Build a :class:`SwitchingReport` from a finished ADTS controller
    (and optionally the pipeline's quantum history for residency)."""
    events = controller.ledger.events
    return SwitchingReport(
        num_switches=controller.num_switches,
        benign_probability=controller.benign_probability,
        matrix=switch_matrix(events),
        residency=policy_residency(quantum_history or []),
        quality=transition_quality(events),
        low_throughput_quanta=controller.low_throughput_quanta,
        missed_decisions=controller.missed_decisions,
        mean_decision_latency=controller.detector.mean_task_latency(),
    )
