"""Multithreaded-throughput fairness metrics.

Aggregate IPC (the paper's metric) can reward starving slow threads; the
post-2003 SMT literature standardized complements: weighted speedup
(Snavely & Tullsen), harmonic mean of speedups (Luo et al.), and the Jain
fairness index. Provided here so ADTS/fixed comparisons can report whether
throughput gains come at a fairness cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np


def jain_index(per_thread_ipc: Mapping[int, float]) -> float:
    """Jain's fairness index on per-thread IPCs: 1/n (worst) .. 1 (equal)."""
    xs = np.array([v for v in per_thread_ipc.values()], dtype=float)
    if xs.size == 0 or not np.any(xs):
        return 0.0
    return float(xs.sum() ** 2 / (xs.size * (xs**2).sum()))


def weighted_speedup(
    per_thread_ipc: Mapping[int, float],
    single_thread_ipc: Mapping[int, float],
) -> float:
    """Sum of per-thread speedups vs. running alone (Snavely & Tullsen)."""
    total = 0.0
    for tid, ipc in per_thread_ipc.items():
        alone = single_thread_ipc.get(tid, 0.0)
        if alone > 0:
            total += ipc / alone
    return total


def hmean_speedup(
    per_thread_ipc: Mapping[int, float],
    single_thread_ipc: Mapping[int, float],
) -> float:
    """Harmonic mean of speedups: balances throughput and fairness."""
    inv = []
    for tid, ipc in per_thread_ipc.items():
        alone = single_thread_ipc.get(tid, 0.0)
        if alone <= 0:
            continue
        speedup = ipc / alone
        if speedup <= 0:
            return 0.0
        inv.append(1.0 / speedup)
    if not inv:
        return 0.0
    return len(inv) / sum(inv)


@dataclass(frozen=True)
class FairnessReport:
    """All fairness metrics for one run."""

    aggregate_ipc: float
    jain: float
    weighted_speedup: Optional[float] = None
    hmean_speedup: Optional[float] = None

    def as_dict(self) -> dict:
        """JSON-friendly view."""
        return {
            "aggregate_ipc": self.aggregate_ipc,
            "jain": self.jain,
            "weighted_speedup": self.weighted_speedup,
            "hmean_speedup": self.hmean_speedup,
        }


def fairness_report(
    stats,
    single_thread_ipc: Optional[Dict[int, float]] = None,
) -> FairnessReport:
    """Build a report from a finished run's :class:`SimStats`.

    ``single_thread_ipc`` (per-thread alone-IPC baselines) enables the
    speedup-based metrics; without it only aggregate IPC and Jain's index
    are reported.
    """
    per_thread = {
        tid: committed / stats.cycles if stats.cycles else 0.0
        for tid, committed in stats.per_thread_committed.items()
    }
    ws = hm = None
    if single_thread_ipc:
        ws = weighted_speedup(per_thread, single_thread_ipc)
        hm = hmean_speedup(per_thread, single_thread_ipc)
    return FairnessReport(
        aggregate_ipc=stats.ipc,
        jain=jain_index(per_thread),
        weighted_speedup=ws,
        hmean_speedup=hm,
    )
