"""Quantum-IPC time-series analysis.

The central empirical question behind ADTS is *how much the best policy
varies over time*: if one policy dominates every quantum, adaptivity cannot
pay. These tools quantify that from per-quantum IPC series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np


def moving_average(series: Sequence[float], window: int) -> List[float]:
    """Centered-causal moving average (simple trailing window)."""
    if window <= 0:
        raise ValueError("window must be positive")
    out: List[float] = []
    acc = 0.0
    for i, x in enumerate(series):
        acc += x
        if i >= window:
            acc -= series[i - window]
        out.append(acc / min(i + 1, window))
    return out


def detect_level_shifts(
    series: Sequence[float],
    threshold: float = 4.0,
    drift: float = 0.25,
) -> List[int]:
    """Two-sided CUSUM change-point detection on a quantum series.

    Returns the indices where the cumulative deviation from the running
    mean exceeds ``threshold`` standard deviations (phase boundaries in the
    workload, the events ADTS is supposed to react to). ``drift`` is the
    slack per step in sigmas.
    """
    xs = np.asarray(series, dtype=float)
    if xs.size < 4:
        return []
    sigma = float(np.std(xs)) or 1e-9
    mean = float(xs[0])
    up = down = 0.0
    shifts: List[int] = []
    for i, x in enumerate(xs):
        z = (x - mean) / sigma
        up = max(0.0, up + z - drift)
        down = max(0.0, down - z - drift)
        if up > threshold or down > threshold:
            shifts.append(i)
            up = down = 0.0
            mean = float(x)
        else:
            mean += 0.1 * (x - mean)
    return shifts


@dataclass
class DominanceProfile:
    """Who wins each quantum when the same workload runs under several
    policies (aligned by quantum index across runs)."""

    policies: List[str]
    wins: Dict[str, int] = field(default_factory=dict)
    per_quantum_best: List[str] = field(default_factory=list)
    mean_ipc: Dict[str, float] = field(default_factory=dict)
    oracle_mean: float = 0.0

    @property
    def dominant_policy(self) -> str:
        return max(self.wins, key=self.wins.get)

    @property
    def dominance_ratio(self) -> float:
        """Fraction of quanta won by the most-winning policy: 1.0 means a
        single policy always wins (no room for adaptivity)."""
        total = sum(self.wins.values())
        return self.wins[self.dominant_policy] / total if total else 0.0

    def oracle_headroom(self) -> float:
        """Per-quantum-max mean over the best fixed mean — the adaptive
        upper bound this workload offers (paper §1's "some 30% room")."""
        best_fixed = max(self.mean_ipc.values())
        return self.oracle_mean / best_fixed - 1.0 if best_fixed else 0.0


def dominance_profile(series_by_policy: Dict[str, Sequence[float]]) -> DominanceProfile:
    """Build a :class:`DominanceProfile` from aligned per-policy series."""
    if not series_by_policy:
        raise ValueError("need at least one policy series")
    lengths = {len(s) for s in series_by_policy.values()}
    if len(lengths) != 1:
        raise ValueError("series must be aligned (equal length)")
    policies = list(series_by_policy)
    n = lengths.pop()
    profile = DominanceProfile(policies=policies, wins={p: 0 for p in policies})
    arr = np.array([series_by_policy[p] for p in policies], dtype=float)
    best_idx = np.argmax(arr, axis=0)
    for q in range(n):
        winner = policies[int(best_idx[q])]
        profile.wins[winner] += 1
        profile.per_quantum_best.append(winner)
    profile.mean_ipc = {p: float(np.mean(series_by_policy[p])) for p in policies}
    profile.oracle_mean = float(np.mean(arr.max(axis=0)))
    return profile
