"""Post-run analysis tools.

Turns raw simulation output (quantum histories, ADTS decision logs, switch
ledgers) into the quantities the paper discusses: policy-dominance
structure over time, switch matrices and their quality, phase-change
detection, and fixed-vs-adaptive comparisons with uncertainty estimates.
"""

from repro.analysis.timeseries import (
    moving_average,
    detect_level_shifts,
    dominance_profile,
    DominanceProfile,
)
from repro.analysis.switching import (
    switch_matrix,
    policy_residency,
    transition_quality,
    SwitchingReport,
    analyze_controller,
)
from repro.analysis.compare import (
    paired_gain,
    bootstrap_mean_diff,
    GainReport,
    compare_fixed_vs_adaptive,
)
from repro.analysis.fairness import (
    jain_index,
    weighted_speedup,
    hmean_speedup,
    FairnessReport,
    fairness_report,
)

__all__ = [
    "moving_average",
    "detect_level_shifts",
    "dominance_profile",
    "DominanceProfile",
    "switch_matrix",
    "policy_residency",
    "transition_quality",
    "SwitchingReport",
    "analyze_controller",
    "paired_gain",
    "bootstrap_mean_diff",
    "GainReport",
    "compare_fixed_vs_adaptive",
    "jain_index",
    "weighted_speedup",
    "hmean_speedup",
    "FairnessReport",
    "fairness_report",
]
