"""repro — reproduction of *Dynamic Scheduling Issues in SMT Architectures*
(Shin, Lee, Gaudiot; IPPS 2003).

Quickstart::

    from repro import build_processor, ADTSController

    adts = ADTSController(heuristic="type3")
    proc = build_processor(mix="mix07", hook=adts, quantum_cycles=2048)
    stats = proc.run_quanta(16)
    print(stats.ipc, adts.summary())

Packages:

* :mod:`repro.smt` — the SMT pipeline substrate;
* :mod:`repro.memory`, :mod:`repro.branch` — cache and predictor substrates;
* :mod:`repro.workloads` — SPEC2000-like synthetic workloads and the 13 mixes;
* :mod:`repro.policies` — the ten fetch policies of Table 1;
* :mod:`repro.core` — ADTS: detector thread, heuristics Type 1–4, oracle;
* :mod:`repro.fastmodel` — vectorized quantum-level model for wide sweeps;
* :mod:`repro.harness` — experiment runner regenerating every figure/table.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.core.adts import ADTSController, WatchdogConfig
from repro.core.heuristics import HEURISTICS, create_heuristic
from repro.core.oracle import OracleScheduler, oracle_upper_bound
from repro.core.thresholds import ThresholdConfig
from repro.faults import FaultInjector, FaultPlan
from repro.policies import POLICY_NAMES, create_policy
from repro.smt.config import SMTConfig
from repro.smt.pipeline import SchedulerHook, SMTProcessor
from repro.workloads import MIXES, get_mix, make_generators, mix_names

__version__ = "1.0.0"

__all__ = [
    "build_processor",
    "SMTProcessor",
    "SMTConfig",
    "SchedulerHook",
    "ADTSController",
    "WatchdogConfig",
    "ThresholdConfig",
    "FaultPlan",
    "FaultInjector",
    "OracleScheduler",
    "oracle_upper_bound",
    "POLICY_NAMES",
    "HEURISTICS",
    "create_policy",
    "create_heuristic",
    "MIXES",
    "get_mix",
    "mix_names",
    "make_generators",
    "__version__",
]


def build_processor(
    mix: Union[str, Sequence[str]] = "mix01",
    num_threads: int = 8,
    seed: int = 0,
    config: Optional[SMTConfig] = None,
    policy: str = "icount",
    hook: Optional[SchedulerHook] = None,
    quantum_cycles: int = 8192,
) -> SMTProcessor:
    """Build a ready-to-run SMT processor for a named mix (or app list).

    Args:
        mix: a mix name (``mix01``..``mix13``) or an explicit sequence of
            application-profile names, one per thread.
        num_threads: contexts to populate; named mixes are down-sampled by
            random exclusion, the paper's §5 procedure.
        seed: root seed for all stochastic components.
        config: machine configuration (default: the paper-compatible 8-wide
            ICOUNT.2.8 machine).
        policy: initial fetch policy.
        hook: scheduler hook (e.g. an :class:`ADTSController`).
        quantum_cycles: scheduling-quantum length (paper: 8192).
    """
    if isinstance(mix, str):
        apps = get_mix(mix).subset(num_threads, seed=seed)
    else:
        apps = tuple(mix)
        num_threads = len(apps)
    cfg = config or SMTConfig(num_threads=max(len(apps), 1))
    if cfg.num_threads < len(apps):
        raise ValueError("config.num_threads smaller than requested thread count")
    traces = make_generators(apps, seed=seed)
    return SMTProcessor(
        cfg, traces, policy=policy, hook=hook, quantum_cycles=quantum_cycles, seed=seed
    )
