"""Chaos-day campaigns: every fault family at once, against replayed load.

PRs 1–5 each proved one robustness mechanism in isolation — seeded
scheduler faults, a supervised worker pool, admission/breaker/degradation
serving, and a self-healing storage layer. A chaos day is the integration
proof: one seeded campaign drives shaped (or recorded) traffic through a
:class:`~repro.service.SimulationService` with autoscaling enabled while
*all* the fault families fire together —

* in-process scheduler faults (counters / dt / policy / hangs) ride on a
  seeded fraction of requests via ``SimRequest.fault_kinds``;
* worker crash / hang faults ride along the same way when a supervised
  pool is in use (``workers > 0``);
* service faults (synthetic overload, forced breaker trips) come from the
  service's own :class:`~repro.faults.FaultPlan` hooks;
* disk faults (torn writes, ENOSPC, failed renames) are injected under
  the journal by :func:`~repro.storage.faultfs.faultfs_session` — and,
  in sharded campaigns (``shards > 1``), under the content-addressed
  result store as well, so cache corruption and lost puts are part of
  the proof;
* silent result corruption (``corrupt_rate > 0``) flips counter bits in
  served full-fidelity payloads at the sharded front door — the
  integrity hazard shadow verification (``verify_rate``) exists to
  catch; poison-pill identities are parked by the DLQ at
  ``dlq_threshold`` strikes.

The campaign asserts one machine-checkable **drain contract**: every
submitted request produced exactly one response; every refusal (rejected /
shed / failed) carries a machine-readable reason; the artifact tree —
including the response journal that took disk faults all campaign — is
fsck-clean (no quarantines) afterwards. When silent corruption is
injected the contract additionally folds in the front door's
**verification audit**: every injected corruption event must have been
caught (no tainted payload still served from the store) and no
divergent-marked entry may survive. The report is written through
``repro.storage`` as a checksummed ``chaos-campaign`` artifact, and with
the default inline lockstep mode (``workers=0`` + virtual clock) the
deterministic portion of the report is a pure function of (config, seed):
same seed, same report.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

from repro.faults import FaultPlan
from repro.service import (
    AutoscalerConfig,
    ServiceConfig,
    SimRequest,
    SimResponse,
    SimulationService,
    TimedRequest,
    TrafficSpec,
    VirtualClock,
    breakdown,
    generate_traffic,
    load_recording,
    replay_realtime,
    replay_traffic,
    save_recording,
    traffic_fingerprint,
)

#: Storage-artifact identity of a campaign report.
CAMPAIGN_FORMAT = "chaos-campaign"
CAMPAIGN_VERSION = 1

#: Outcomes that count as refusals and therefore must carry a reason.
_REFUSAL_OUTCOMES = ("rejected", "shed", "failed")


@dataclass(frozen=True)
class CampaignConfig:
    """One chaos day, declaratively.

    Attributes:
        seed: root seed — traffic, per-request faults, service faults and
            disk faults all derive from it.
        shape / requests / duration_s: the synthetic traffic model
            (ignored when ``recording`` is set).
        recording: path of a ``traffic-recording`` artifact to replay
            instead of generating synthetic traffic.
        fault_rate: shared rate for the service and disk fault families
            (see :meth:`~repro.faults.FaultPlan.chaos_day`).
        request_fault_fraction / request_fault_rate: share of requests
            carrying in-process scheduler faults, and the per-boundary
            rate inside those requests.
        workers: 0 = inline lockstep under a virtual clock (fully
            deterministic report — the default and what CI pins);
            > 0 = real supervised pool paced by the wall clock, which
            additionally exercises worker crash/hang faults.
        shards: > 1 routes the campaign through the sharded front-door
            (:class:`~repro.service.ShardedService`) — identity-keyed
            routing, request coalescing under crash-safe leases, and a
            content-addressed result store at ``out_dir/resultstore``
            that takes the same disk faults as the journal. 1 (default)
            keeps the single-service path.
        verify_rate: shadow-verification sampling rate (0 disables).
            Any non-zero value forces the sharded front-door, which is
            where the verifier lives.
        dlq_threshold: engine-failure strikes before an identity is
            parked in the dead-letter queue (0 disables; also forces
            the sharded front-door when non-zero).
        corrupt_rate: seeded silent-corruption injection rate on served
            full-fidelity results — the hazard verification must catch.
            Campaigns with ``corrupt_rate > 0`` only pass when the
            verification audit shows every injected event was caught.
        autoscale_min / autoscale_max: autoscaler bounds (always on —
            a chaos day without scaling pressure isn't one).
        tick_s: virtual-clock step per replay iteration.
        time_scale: arrival-time multiplier (compress a recording).
        queue_capacity / degrade_at_depth / max_attempts /
        breaker_failures / breaker_cooldown_s / drain_deadline_s:
            service knobs, passed through.
        profile_store: behaviour-profile store directory — the campaign's
            behaviour is snapshotted there at the end, and when the store
            has a designated baseline a rolling DriftGuard runs inside
            the service for the whole campaign (None disables both).
        profile_label: label for the captured profile (default
            ``chaosday``).
    """

    seed: int = 0
    shape: str = "diurnal"
    requests: int = 120
    duration_s: float = 30.0
    recording: Optional[str] = None
    fault_rate: float = 0.1
    request_fault_fraction: float = 0.25
    request_fault_rate: float = 0.2
    workers: int = 0
    shards: int = 1
    verify_rate: float = 0.0
    dlq_threshold: int = 0
    corrupt_rate: float = 0.0
    autoscale_min: int = 1
    autoscale_max: int = 4
    tick_s: float = 0.05
    time_scale: float = 1.0
    queue_capacity: int = 32
    degrade_at_depth: Optional[int] = 24
    max_attempts: int = 2
    breaker_failures: int = 3
    breaker_cooldown_s: float = 2.0
    drain_deadline_s: float = 15.0
    profile_store: Optional[str] = None
    profile_label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if not 1 <= self.autoscale_min <= self.autoscale_max:
            raise ValueError("need 1 <= autoscale_min <= autoscale_max")
        if self.tick_s <= 0:
            raise ValueError("tick_s must be positive")
        if not 0.0 <= self.request_fault_fraction <= 1.0:
            raise ValueError("request_fault_fraction must be in [0, 1]")
        if not 0.0 <= self.verify_rate <= 1.0:
            raise ValueError("verify_rate must be in [0, 1]")
        if not 0.0 <= self.corrupt_rate <= 1.0:
            raise ValueError("corrupt_rate must be in [0, 1]")
        if self.dlq_threshold < 0:
            raise ValueError("dlq_threshold must be >= 0")


def _campaign_traffic(cfg: CampaignConfig) -> List[TimedRequest]:
    if cfg.recording is not None:
        return load_recording(cfg.recording)
    kinds = ["counters", "dt", "policy", "hangs"]
    if cfg.workers > 0:
        # Process-level faults only where a supervisor can contain them.
        kinds.append("worker")
    spec = TrafficSpec(
        shape=cfg.shape,
        requests=cfg.requests,
        duration_s=cfg.duration_s,
        seed=cfg.seed,
        fault_fraction=cfg.request_fault_fraction,
        fault_kinds=tuple(kinds),
        fault_rate=cfg.request_fault_rate,
    )
    return generate_traffic(spec)


def check_contract(
    events: List[TimedRequest],
    responses: List[SimResponse],
    stats: dict,
    audit: Optional[dict] = None,
) -> dict:
    """The drain contract, as data.

    Conservation — every submitted request answered exactly once — plus
    the refusal-reason obligation. ``ok`` is the machine-checkable verdict
    the exit code and :func:`~repro.harness.regression.verify_campaign`
    both key on.

    ``audit`` (a :meth:`~repro.service.ShardedService.verification_audit`
    result, when the campaign ran the integrity layer) is folded into
    ``ok``: a campaign that injected silent corruption passes only if
    every injected event was caught, no divergent-marked store entry
    survives, and the DLQ still refuses everything it parked.
    """
    submitted = [e.request.request_id for e in events]
    answered: dict = {}
    refusals_without_reason = 0
    for r in responses:
        answered[r.request_id] = answered.get(r.request_id, 0) + 1
        if r.outcome in _REFUSAL_OUTCOMES and not r.reason:
            refusals_without_reason += 1
    missing = sorted(rid for rid in submitted if rid not in answered)
    duplicates = sorted(rid for rid, n in answered.items() if n > 1)
    unknown = sorted(set(answered) - set(submitted))
    unaccounted = len(missing) + len(duplicates) + len(unknown)
    ok = (
        unaccounted == 0
        and refusals_without_reason == 0
        and stats["queue_depth"] == 0
        and stats["inflight"] == 0
        and len(responses) == len(submitted)
        and (audit is None or bool(audit.get("ok")))
    )
    out = {
        "ok": ok,
        "submitted": len(submitted),
        "answered": len(responses),
        "unaccounted": unaccounted,
        "missing": missing[:20],
        "duplicates": duplicates[:20],
        "unknown": unknown[:20],
        "refusals_without_reason": refusals_without_reason,
    }
    if audit is not None:
        out["verification"] = audit
    return out


def run_campaign(
    cfg: CampaignConfig,
    out_dir: Union[str, Path],
    *,
    full_runner: Optional[Callable[[SimRequest], dict]] = None,
    fast_runner: Optional[Callable[[SimRequest], dict]] = None,
) -> Tuple[dict, int]:
    """Run one chaos day; returns ``(report, exit_code)``.

    Artifacts land in ``out_dir``: ``journal.jsonl`` (the response journal
    that absorbs the disk faults), ``traffic.json`` (the replayed stream,
    for audit/re-replay) and ``campaign.json`` (the report). Exit code 0
    iff the drain contract held *and* the post-run fsck found nothing to
    quarantine. ``full_runner`` / ``fast_runner`` exist for tests that
    substitute synthetic engines.
    """
    from repro.storage import atomic_write_bytes, embed_json_artifact, fsck_tree
    import json

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    plan = FaultPlan.chaos_day(
        seed=cfg.seed, rate=cfg.fault_rate, corrupt_rate=cfg.corrupt_rate
    )
    events = _campaign_traffic(cfg)
    fingerprint = traffic_fingerprint(events)

    deterministic = cfg.workers == 0
    clock: Callable[[], float]
    virtual: Optional[VirtualClock] = None
    if deterministic:
        virtual = VirtualClock()
        clock = virtual
    else:
        import time

        clock = time.monotonic

    service_cfg = ServiceConfig(
        workers=cfg.workers,
        queue_capacity=cfg.queue_capacity,
        degrade_at_depth=cfg.degrade_at_depth,
        max_attempts=cfg.max_attempts,
        breaker_failures=cfg.breaker_failures,
        breaker_cooldown_s=cfg.breaker_cooldown_s,
        drain_deadline_s=cfg.drain_deadline_s,
        journal_path=out / "journal.jsonl",
        fault_plan=plan,
        autoscaler=AutoscalerConfig(
            min_workers=cfg.autoscale_min,
            max_workers=cfg.autoscale_max,
            cooldown_s=max(cfg.tick_s * 4, 0.2),
        ),
    )
    sharded = (
        cfg.shards > 1
        or cfg.verify_rate > 0.0
        or cfg.dlq_threshold > 0
        or cfg.corrupt_rate > 0.0
    )
    if sharded:
        from repro.service import ShardedService

        service = ShardedService(
            service_cfg,
            shards=cfg.shards,
            store=out / "resultstore",
            full_runner=full_runner,
            fast_runner=fast_runner,
            clock=clock,
            verify_rate=cfg.verify_rate,
            verify_seed=cfg.seed,
            dlq_threshold=cfg.dlq_threshold,
        )
    else:
        service = SimulationService(
            service_cfg, full_runner=full_runner, fast_runner=fast_runner, clock=clock
        )

    profile_store = None
    if cfg.profile_store is not None:
        from repro.behavior import DriftGuard, DriftGuardConfig, ProfileStore

        profile_store = ProfileStore(cfg.profile_store)
        service.profile_label = cfg.profile_label or "chaosday"
        baseline = profile_store.load_baseline()
        if baseline is not None:
            try:
                service.attach_drift_guard(
                    DriftGuard(baseline, DriftGuardConfig())
                )
            except ValueError:
                # Baseline carries no rate.* metrics (a sim or bench
                # profile): nothing to compare online; offline drift via
                # `repro profile drift` still covers it.
                pass

    # The disk fault family lives under everything the journal writes
    # during the campaign; the traffic/report artifacts are written after
    # the session so the evidence itself is never fault-injected.
    from repro.storage import faultfs_session

    with faultfs_session(plan.disk_plan()) as ffs:
        if virtual is not None:
            responses = replay_traffic(
                service,
                events,
                virtual,
                tick_s=cfg.tick_s,
                max_virtual_s=cfg.duration_s * 4 + 60.0,
                time_scale=cfg.time_scale,
            )
            # Nothing ticks the clock during drain; let each read nudge
            # time forward so cooldown/deadline-gated paths make progress.
            virtual.auto_advance_s = cfg.tick_s
        else:
            responses = replay_realtime(
                service, events, time_scale=cfg.time_scale
            )
        stats = service.drain(cfg.drain_deadline_s)
        responses.extend(service.take_completed())
        disk_summary = ffs.summary() if ffs is not None else None

    audit = service.verification_audit() if sharded else None
    contract = check_contract(events, responses, stats, audit=audit)
    fsck = fsck_tree(out, repair=True)
    fsck_ok = fsck.exit_code == 0
    exit_code = 0 if (contract["ok"] and fsck_ok) else 1

    save_recording(
        out / "traffic.json",
        events,
        meta={"source": "chaosday", "seed": cfg.seed, "shape": cfg.shape},
    )
    report = {
        "kind": CAMPAIGN_FORMAT,
        "config": asdict(cfg),
        "deterministic": deterministic,
        "traffic_fingerprint": fingerprint,
        "contract": contract,
        "breakdown": breakdown(responses),
        "counters": stats["counters"],
        "breaker": {
            "state": stats["breaker"]["state"],
            "transitions": len(stats["breaker_transitions"]),
        },
        "autoscaler": stats["autoscaler"],
        "sharding": (
            {"shards": cfg.shards, "summary": service.summary()}
            if sharded
            else None
        ),
        "verification": audit,
        "faults": {
            "plan": {
                "seed": plan.seed,
                "rate": cfg.fault_rate,
                "corrupt_rate": cfg.corrupt_rate,
            },
            "disk": disk_summary,
        },
        "fsck": {"counts": fsck.counts, "exit_code": fsck.exit_code},
        "exit_code": exit_code,
    }
    if profile_store is not None:
        from repro.behavior import (
            BehaviorProfile,
            flatten_metrics,
            profile_from_campaign,
            service_rates,
        )

        profile = profile_from_campaign(
            report, cfg.profile_label or "chaosday"
        )
        if not any(k.startswith("rate.") for k in profile.metrics):
            # Unsharded campaigns carry no sharding summary in the report;
            # derive the rate.* namespace from the live service so this
            # profile can still seed a DriftGuard as a baseline.
            flat = flatten_metrics(
                {k: v for k, v in service.summary().items() if k != "behavior"}
            )
            rates = service_rates(flat)
            if rates:
                profile = BehaviorProfile(
                    label=profile.label,
                    source=profile.source,
                    metrics={**profile.metrics, **rates},
                    identity=profile.identity,
                    window=profile.window,
                )
        profile_id = profile_store.save(profile)
        guard = service._drift_guard
        report["behavior"] = {
            "profile": profile_id,
            "baseline": profile_store.baseline_id(),
            "guard": guard.summary() if guard is not None else None,
        }
    doc = embed_json_artifact(report, CAMPAIGN_FORMAT, CAMPAIGN_VERSION)
    blob = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    atomic_write_bytes(out / "campaign.json", blob.encode("utf-8"))
    return report, exit_code


def format_report(report: dict) -> str:
    """Terminal rendering of a campaign report."""
    contract = report["contract"]
    b = report["breakdown"]
    lines = [
        f"chaos day: seed={report['config']['seed']} "
        f"shape={report['config']['shape']} "
        f"requests={contract['submitted']} "
        f"{'deterministic' if report['deterministic'] else 'wall-clock'}",
        f"  contract: {'OK' if contract['ok'] else 'VIOLATED'} "
        f"(answered {contract['answered']}/{contract['submitted']}, "
        f"unaccounted {contract['unaccounted']}, "
        f"reasonless refusals {contract['refusals_without_reason']})",
        f"  outcomes: {b['outcomes']}",
        f"  degraded share {b['degraded_share']:.2%}, "
        f"deadline miss rate {b['deadline_miss_rate']:.2%}",
    ]
    scaler = report.get("autoscaler")
    if scaler is not None:
        lines.append(
            f"  autoscaler: ups={scaler['scale_ups']} "
            f"downs={scaler['scale_downs']} "
            f"final target={scaler['target']}"
        )
    sharding = report.get("sharding")
    if sharding is not None:
        s = sharding["summary"]
        lines.append(
            f"  sharding: {sharding['shards']} shard(s), "
            f"{s['simulations']} simulation(s) for {s['submitted']} request(s) "
            f"(store hits {s['cache']['store_hits']}, "
            f"coalesced {s['coalescing']['coalesced_waiters']}, "
            f"promotions {s['coalescing']['promotions']})"
        )
    audit = report.get("verification")
    if audit is not None:
        c = audit["counters"]
        dlq = audit.get("dlq") or {}
        lines.append(
            f"  integrity: {'OK' if audit['ok'] else 'VIOLATED'} "
            f"(corrupted {audit['corrupted_injected']}, "
            f"caught {audit['caught']}, "
            f"uncaught {len(audit['uncaught'])}, "
            f"verified {c['verified']}, restored {c['restored']}, "
            f"dlq parked {dlq.get('parked', 0)})"
        )
    lines.extend(
        [
            f"  breaker transitions: {report['breaker']['transitions']}",
            f"  fsck: {report['fsck']['counts']} "
            f"(exit {report['fsck']['exit_code']})",
            f"  exit: {report['exit_code']}",
        ]
    )
    return "\n".join(lines)
