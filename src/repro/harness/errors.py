"""Structured error taxonomy for the experiment harness.

Every failure mode the harness can produce maps onto one exception class,
so sweep drivers and CI wrappers can react per-category (don't retry a
``ConfigError``; do retry a ``RunTimeoutError``) instead of pattern-matching
message strings. All classes derive from :class:`HarnessError`; the two
that correspond to built-in categories also subclass the matching built-in
(``ValueError`` / ``TimeoutError``) so pre-existing ``except`` clauses keep
working.
"""

from __future__ import annotations

from typing import Optional

# The durable-storage failure taxonomy lives in the dependency-free
# repro.storage.errors and is re-exported here so harness code sees one
# unified hierarchy: ENOSPC/EDQUOT -> DiskFullError, EACCES/EPERM ->
# StoragePermissionError, retry-exhausted I/O -> TransientStorageError,
# and envelope-level damage -> ArtifactCorruptError/ArtifactVersionError.
from repro.storage.errors import (  # noqa: F401  (re-exports)
    ArtifactCorruptError,
    ArtifactError,
    ArtifactVersionError,
    DiskFullError,
    StorageError,
    StoragePermissionError,
    TransientStorageError,
)


class HarnessError(Exception):
    """Base class for all harness-raised failures."""


class ConfigError(HarnessError, ValueError):
    """A run configuration field failed validation at construction time.

    Carries the offending field so callers (and error messages) name it
    precisely instead of failing deep inside ``build_processor``.
    """

    def __init__(self, field: str, value: object, requirement: str) -> None:
        self.field = field
        self.value = value
        self.requirement = requirement
        super().__init__(f"invalid RunConfig.{field}={value!r}: must be {requirement}")


class RunTimeoutError(HarnessError, TimeoutError):
    """A single simulation run exceeded its wall-clock budget."""

    def __init__(self, label: str, timeout_s: float) -> None:
        self.label = label
        self.timeout_s = timeout_s
        super().__init__(f"{label}: run exceeded {timeout_s:g}s wall-clock budget")


class HeartbeatStallError(HarnessError, TimeoutError):
    """A supervised worker stopped heartbeating (hung, not merely slow)."""

    def __init__(self, label: str, stale_s: float, limit_s: float) -> None:
        self.label = label
        self.stale_s = stale_s
        self.limit_s = limit_s
        super().__init__(
            f"{label}: no heartbeat for {stale_s:.1f}s (limit {limit_s:g}s); "
            "worker killed"
        )


class WorkerCrashError(HarnessError):
    """A supervised worker process died without reporting a result.

    ``signal`` is set when the worker was killed by a signal (segfault,
    OOM-kill, external SIGKILL); ``exitcode`` when it exited on its own.
    """

    def __init__(self, label: str, exitcode: Optional[int]) -> None:
        self.label = label
        self.exitcode = exitcode
        self.signal = -exitcode if exitcode is not None and exitcode < 0 else None
        how = (
            f"killed by signal {self.signal}"
            if self.signal is not None
            else f"exited with code {exitcode}"
        )
        super().__init__(f"{label}: worker {how} without a result")


class RunFailedError(HarnessError):
    """A run kept failing after its bounded retries were exhausted.

    The last underlying exception is chained as ``__cause__``.
    """

    def __init__(self, label: str, attempts: int, last: Optional[BaseException] = None) -> None:
        self.label = label
        self.attempts = attempts
        detail = f": {last}" if last is not None else ""
        super().__init__(f"{label}: failed after {attempts} attempt(s){detail}")


class JournalError(HarnessError):
    """The run journal contains undecodable entries (not a truncated tail),
    or is exclusively locked by another live sweep process."""


#: Supervisor failure taxonomy: every way a supervised cell attempt can fail,
#: as stable strings (recorded per attempt in ``SupervisedExecutor.failures``
#: so post-mortems can count causes without parsing messages).
FAILURE_CRASH = "crash"  # worker died (signal / nonzero exit), no result
FAILURE_TIMEOUT = "timeout"  # hard wall-clock limit exceeded, SIGKILLed
FAILURE_STALLED = "stalled-heartbeat"  # heartbeats went stale, SIGKILLed
FAILURE_EXCEPTION = "exception"  # worker reported a Python exception
FAILURE_INVARIANT = "invariant"  # worker reported an InvariantViolation

FAILURE_KINDS = (
    FAILURE_CRASH,
    FAILURE_TIMEOUT,
    FAILURE_STALLED,
    FAILURE_EXCEPTION,
    FAILURE_INVARIANT,
)


#: Service outcome taxonomy: every way the simulation service can answer a
#: request, as stable strings (every response carries exactly one of these,
#: so load tests and dashboards can count dispositions without parsing
#: reason text). ``degraded`` responses were *served* — by the calibrated
#: fast model instead of the detailed pipeline — while ``rejected``/``shed``
#: requests were refused (at admission) or dropped (at dequeue, deadline
#: already blown) without being simulated at all.
OUTCOME_FULL = "full"  # served at full fidelity by the detailed engine
OUTCOME_DEGRADED = "degraded"  # served by the fast model (ladder step)
OUTCOME_REJECTED = "rejected"  # refused at admission (full queue, quota, …)
OUTCOME_SHED = "shed"  # dequeued past its deadline; dropped unserved
OUTCOME_FAILED = "failed"  # full tier failed and no degrade path applied

OUTCOME_KINDS = (
    OUTCOME_FULL,
    OUTCOME_DEGRADED,
    OUTCOME_REJECTED,
    OUTCOME_SHED,
    OUTCOME_FAILED,
)
