"""Canonical experiment definitions — one function per paper artifact.

Each experiment returns a plain dict of series/rows (JSON-friendly) and has
a ``quick`` mode (sub-minute, fewer mixes/quanta — the pytest-benchmark
default) and a full mode approximating the paper's scale. The experiment
ids (T1, F7a–F8d, S1–S6, A1–A3) are indexed in DESIGN.md §4.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro import build_processor
from repro.core.adts import ADTSController
from repro.core.thresholds import ThresholdConfig
from repro.faults import FaultPlan
from repro.harness.resilience import RetryPolicy, guarded_run
from repro.harness.runner import RunConfig, run_adts, run_fixed
from repro.harness.sweep import SweepResult, threshold_type_grid
from repro.policies.registry import POLICY_NAMES
from repro.workloads.mixes import MIXES, get_mix


@dataclass(frozen=True)
class ExperimentDefaults:
    """Shared knobs for the experiment suite."""

    quantum_cycles: int = 2048
    quanta: int = 24
    warmup_quanta: int = 4
    seed: int = 0
    quick_mixes: Sequence[str] = ("mix02", "mix05", "mix07", "mix10")
    full_mixes: Sequence[str] = tuple(m.name for m in MIXES)
    thresholds: Sequence[float] = (1.0, 2.0, 3.0, 4.0, 5.0)
    heuristics: Sequence[str] = ("type1", "type2", "type3", "type3g", "type4")

    def mixes(self, quick: bool) -> List[str]:
        """The mix set for quick or full mode."""
        return list(self.quick_mixes if quick else self.full_mixes)

    def base_run(self) -> RunConfig:
        """A RunConfig carrying these defaults."""
        return RunConfig(
            quantum_cycles=self.quantum_cycles,
            quanta=self.quanta,
            warmup_quanta=self.warmup_quanta,
            seed=self.seed,
        )


DEFAULTS = ExperimentDefaults()


# ---------------------------------------------------------------------------
# T1 — Table 1: the ten fixed fetch policies.
# ---------------------------------------------------------------------------
def experiment_table1(
    defaults: ExperimentDefaults = DEFAULTS,
    quick: bool = True,
    policies: Optional[Sequence[str]] = None,
    retry: Optional[RetryPolicy] = None,
) -> Dict:
    """Fixed-policy comparison across mixes. Checks the Tullsen orderings:
    ICOUNT best on average, RR worst."""
    policies = list(policies or POLICY_NAMES)
    mixes = defaults.mixes(quick)
    base = defaults.base_run()
    rows = []
    means = {}
    for policy in policies:
        ipcs = [
            guarded_run(
                lambda mix=mix, policy=policy: run_fixed(
                    replace(base, mix=mix, policy=policy)
                ),
                retry=retry,
                label=f"table1[{policy},{mix}]",
            ).ipc
            for mix in mixes
        ]
        mean = sum(ipcs) / len(ipcs)
        means[policy] = mean
        rows.append({"policy": policy, "mean_ipc": mean, "per_mix": dict(zip(mixes, ipcs))})
    rows.sort(key=lambda r: -r["mean_ipc"])
    return {"experiment": "T1", "mixes": mixes, "rows": rows, "mean_ipc": means}


# ---------------------------------------------------------------------------
# F7a–d / F8a–d — the threshold x type grid.
# ---------------------------------------------------------------------------
def experiment_fig7(sweep: SweepResult) -> Dict:
    """Figure 7 series from a finished grid: switch counts and benign-switch
    probabilities vs. threshold and vs. heuristic type."""
    return {
        "experiment": "F7",
        "thresholds": sweep.thresholds,
        "heuristics": sweep.heuristics,
        "switches_vs_threshold": {
            h: sweep.series_switches_vs_threshold(h) for h in sweep.heuristics
        },
        "switches_vs_type": {
            m: sweep.series_switches_vs_type(m) for m in sweep.thresholds
        },
        "benign_vs_threshold": {
            h: sweep.series_benign_vs_threshold(h) for h in sweep.heuristics
        },
        "benign_vs_type": {m: sweep.series_benign_vs_type(m) for m in sweep.thresholds},
    }


def experiment_fig8(sweep: SweepResult, icount_baseline: float) -> Dict:
    """Figure 8 series plus the best-cell claim (threshold 2, Type 3)."""
    best = sweep.best_cell()
    best_ipc = sweep.ipc[best]
    return {
        "experiment": "F8",
        "thresholds": sweep.thresholds,
        "heuristics": sweep.heuristics,
        "ipc_vs_threshold": {h: sweep.series_ipc_vs_threshold(h) for h in sweep.heuristics},
        "ipc_vs_type": {m: sweep.series_ipc_vs_type(m) for m in sweep.thresholds},
        "best_cell": {"threshold": best[0], "heuristic": best[1], "ipc": best_ipc},
        "icount_baseline_ipc": icount_baseline,
        "best_improvement_over_icount": (
            best_ipc / icount_baseline - 1.0 if icount_baseline else 0.0
        ),
    }


def run_grid(
    defaults: ExperimentDefaults = DEFAULTS,
    quick: bool = True,
    journal=None,
    retry: Optional[RetryPolicy] = None,
    executor=None,
    mixes: Optional[Sequence[str]] = None,
    fault_plan: Optional[FaultPlan] = None,
    batch: Optional[int] = None,
) -> SweepResult:
    """The shared F7/F8 grid (optionally journaled/guarded/parallel — see
    :func:`~repro.harness.sweep.threshold_type_grid`). ``mixes`` overrides
    the quick/full mix set (smaller smoke grids); ``fault_plan`` applies to
    every cell (disk-only plans leave the aggregate identical); ``batch``
    runs cells N at a time through the lockstep batch engine
    (bit-identical, journal-compatible with any other batch size)."""
    return threshold_type_grid(
        defaults.base_run(),
        list(mixes) if mixes is not None else defaults.mixes(quick),
        thresholds=defaults.thresholds,
        heuristics=defaults.heuristics,
        journal=journal,
        retry=retry,
        executor=executor,
        fault_plan=fault_plan,
        batch=batch,
    )


# ---------------------------------------------------------------------------
# S6-1 — headline: best ADTS cell vs fixed ICOUNT.
# ---------------------------------------------------------------------------
def experiment_headline(
    defaults: ExperimentDefaults = DEFAULTS,
    quick: bool = True,
    threshold: float = 2.0,
    heuristic: str = "type3",
    retry: Optional[RetryPolicy] = None,
) -> Dict:
    """ADTS at the paper's best setting vs. fixed ICOUNT, per mix."""
    mixes = defaults.mixes(quick)
    base = defaults.base_run()
    th = ThresholdConfig(ipc_threshold=threshold)
    per_mix = {}
    for mix in mixes:
        fixed = guarded_run(
            lambda mix=mix: run_fixed(replace(base, mix=mix, policy="icount")),
            retry=retry, label=f"headline-fixed[{mix}]",
        )
        adts = guarded_run(
            lambda mix=mix: run_adts(
                replace(base, mix=mix), heuristic=heuristic, thresholds=th
            ),
            retry=retry, label=f"headline-adts[{mix}]",
        )
        per_mix[mix] = {
            "icount_ipc": fixed.ipc,
            "adts_ipc": adts.ipc,
            "improvement": adts.ipc / fixed.ipc - 1.0 if fixed.ipc else 0.0,
            "switches": adts.scheduler.get("switches", 0),
        }
    mean_fixed = sum(v["icount_ipc"] for v in per_mix.values()) / len(per_mix)
    mean_adts = sum(v["adts_ipc"] for v in per_mix.values()) / len(per_mix)
    return {
        "experiment": "S6-1",
        "threshold": threshold,
        "heuristic": heuristic,
        "per_mix": per_mix,
        "mean_icount_ipc": mean_fixed,
        "mean_adts_ipc": mean_adts,
        "mean_improvement": mean_adts / mean_fixed - 1.0 if mean_fixed else 0.0,
    }


# ---------------------------------------------------------------------------
# S6-2 — mixture similarity: homogeneous vs diverse mixes.
# ---------------------------------------------------------------------------
def experiment_similarity(
    defaults: ExperimentDefaults = DEFAULTS,
    threshold: float = 2.0,
    heuristic: str = "type3",
    homogeneous: Sequence[str] = ("mix09", "mix10", "mix11"),
    diverse: Sequence[str] = ("mix05", "mix12", "mix13"),
) -> Dict:
    """The §6 finding: similar-application mixes gain more from ADTS."""
    base = defaults.base_run()
    th = ThresholdConfig(ipc_threshold=threshold)

    def group_improvement(mixes: Sequence[str]) -> Dict:
        gains, sims = [], []
        for mix in mixes:
            fixed = run_fixed(replace(base, mix=mix, policy="icount"))
            adts = run_adts(replace(base, mix=mix), heuristic=heuristic, thresholds=th)
            gains.append(adts.ipc / fixed.ipc - 1.0 if fixed.ipc else 0.0)
            sims.append(get_mix(mix).similarity())
        return {
            "mixes": list(mixes),
            "mean_improvement": sum(gains) / len(gains),
            "per_mix_improvement": dict(zip(mixes, gains)),
            "mean_similarity": sum(sims) / len(sims),
        }

    return {
        "experiment": "S6-2",
        "homogeneous": group_improvement(homogeneous),
        "diverse": group_improvement(diverse),
    }


# ---------------------------------------------------------------------------
# S1 — thread-count scaling: fixed ICOUNT vs ADTS at 2/4/6/8 threads.
# ---------------------------------------------------------------------------
def experiment_thread_scaling(
    defaults: ExperimentDefaults = DEFAULTS,
    mix: str = "mix05",
    thread_counts: Sequence[int] = (2, 4, 6, 8),
    threshold: float = 2.0,
    heuristic: str = "type3",
) -> Dict:
    """Throughput vs. context count (the §1 saturation effect)."""
    base = defaults.base_run()
    th = ThresholdConfig(ipc_threshold=threshold)
    rows = []
    for n in thread_counts:
        cfg = replace(base, mix=mix, num_threads=n)
        fixed = run_fixed(replace(cfg, policy="icount"))
        adts = run_adts(cfg, heuristic=heuristic, thresholds=th)
        rows.append(
            {
                "threads": n,
                "icount_ipc": fixed.ipc,
                "adts_ipc": adts.ipc,
            }
        )
    return {"experiment": "S1", "mix": mix, "rows": rows}


# ---------------------------------------------------------------------------
# S3 — detector-thread overhead/feasibility.
# ---------------------------------------------------------------------------
def experiment_detector_overhead(
    defaults: ExperimentDefaults = DEFAULTS,
    mix: str = "mix05",
    threshold: float = 2.0,
    heuristic: str = "type3",
) -> Dict:
    """DT slot consumption, task latency and starvation; plus the
    instant-DT (zero-cost) ablation to bound the overhead's IPC impact."""
    base = replace(defaults.base_run(), mix=mix)
    th = ThresholdConfig(ipc_threshold=threshold)
    real = run_adts(base, heuristic=heuristic, thresholds=th, instant_dt=False)
    instant = run_adts(base, heuristic=heuristic, thresholds=th, instant_dt=True)
    return {
        "experiment": "S3",
        "mix": mix,
        "real_dt": {
            "ipc": real.ipc,
            "dt_instructions": real.scheduler.get("dt_instructions", 0),
            "dt_starved_cycles": real.scheduler.get("dt_starved_cycles", 0),
            "dt_mean_task_latency": real.scheduler.get("dt_mean_task_latency", 0.0),
            "missed_decisions": real.scheduler.get("missed_decisions", 0),
        },
        "instant_dt": {"ipc": instant.ipc},
        "dt_overhead_ipc_cost": (
            instant.ipc / real.ipc - 1.0 if real.ipc else 0.0
        ),
    }


# ---------------------------------------------------------------------------
# S7 — resilience: ADTS under a seeded fault storm vs. a clean run.
# ---------------------------------------------------------------------------
def experiment_resilience(
    defaults: ExperimentDefaults = DEFAULTS,
    mix: str = "mix05",
    threshold: float = 2.0,
    heuristic: str = "type3",
    fault_rate: float = 0.35,
    fault_seed: int = 0,
) -> Dict:
    """Graceful-degradation check: the same (mix, seed) run clean and under
    a full fault storm (stale/flipped counters, DT loss and starvation,
    dropped/spurious policy commands, transient thread hangs).

    Reports the IPC degradation and the watchdog's reaction — the claim
    under test is that the controller survives (no crash), detects the
    corruption, and bounds the damage by falling back to fixed ICOUNT.
    """
    base = replace(defaults.base_run(), mix=mix)
    th = ThresholdConfig(ipc_threshold=threshold)
    clean = run_adts(base, heuristic=heuristic, thresholds=th)
    plan = FaultPlan.storm(seed=fault_seed, rate=fault_rate)
    faulty = run_adts(base, heuristic=heuristic, thresholds=th, fault_plan=plan)
    return {
        "experiment": "S7",
        "mix": mix,
        "fault_rate": fault_rate,
        "fault_seed": fault_seed,
        "clean_ipc": clean.ipc,
        "faulty_ipc": faulty.ipc,
        "ipc_degradation": (
            1.0 - faulty.ipc / clean.ipc if clean.ipc else 0.0
        ),
        "faults_injected": faulty.scheduler.get("faults_injected", 0),
        "fault_counts": faulty.scheduler.get("fault_counts", {}),
        "fallback_events": faulty.scheduler.get("fallback_events", 0),
        "implausible_quanta": faulty.scheduler.get("implausible_quanta", 0),
        "safe_mode_quanta": faulty.scheduler.get("safe_mode_quanta", 0),
        "missed_decisions": faulty.scheduler.get("missed_decisions", 0),
    }
