"""Process-isolated supervised executor for sweep cells.

:func:`~repro.harness.resilience.guarded_run` can bound a run's wall-clock,
but it cannot *stop* a hung attempt: CPython offers no way to kill a
compute-bound thread, so a timed-out cell keeps burning a core. This module
closes that hole by running every cell in a child **process** under a
supervisor that enforces limits with SIGKILL:

* a pool of up to ``workers`` concurrent cell processes;
* per-run **heartbeats**: workers report every finished quantum over a
  pipe, so the supervisor distinguishes *hung* (stale heartbeat → killed)
  from merely *slow* (heartbeats flowing → left alone);
* a hard per-attempt **wall-clock limit**, also enforced with SIGKILL;
* **crash containment**: a segfault, OOM-kill or stray ``kill -9`` takes
  down one cell's process, not the sweep;
* bounded **restart with backoff** per cell; retries strip process-killing
  worker faults (``FaultPlan.without_worker_faults``) so an injected crash
  is survived rather than replayed forever, and resume from the cell's
  latest mid-run checkpoint when a checkpoint directory is configured;
* **deterministic aggregation**: results are keyed by cell identity and
  reassembled in canonical sweep order, so the aggregate is bit-identical
  to a serial sweep regardless of worker count, completion order, crashes
  or restarts (every run is seed-deterministic);
* :class:`~repro.harness.journal.RunJournal` integration: journaled cells
  are served without spawning a worker, finished cells are durably appended
  by the supervisor (the journal's single-writer lock lives in the parent —
  workers never touch the journal file).

The supervisor records every failed attempt in :attr:`SupervisedExecutor.
failures` using the stable taxonomy strings of
:mod:`repro.harness.errors` (``crash`` / ``timeout`` / ``stalled-heartbeat``
/ ``exception`` / ``invariant``), so post-mortems can count causes without
parsing messages.

Two consumption styles share one pool:

* **batch** — :meth:`SupervisedExecutor.run` takes a list of items and
  blocks until all complete (retrying per config), as sweeps always have;
* **streaming** — :meth:`SupervisedExecutor.spawn_attempt` /
  :meth:`~SupervisedExecutor.pump` expose the same supervision (heartbeats,
  SIGKILL limits, crash taxonomy) one attempt at a time without blocking,
  so a long-lived caller such as
  :class:`~repro.service.SimulationService` can interleave dispatch with
  its own admission/backpressure logic. ``run()`` is implemented on top of
  the streaming primitives.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.core.thresholds import ThresholdConfig
from repro.harness.errors import (
    FAILURE_CRASH,
    FAILURE_EXCEPTION,
    FAILURE_INVARIANT,
    FAILURE_STALLED,
    FAILURE_TIMEOUT,
    HeartbeatStallError,
    RunFailedError,
    RunTimeoutError,
    WorkerCrashError,
)
from repro.harness.journal import RunJournal
from repro.smt.checkpoint import CheckpointPlan
from repro.smt.invariants import InvariantViolation

# ---------------------------------------------------------------------------
# Task kinds: what a worker knows how to run.
# ---------------------------------------------------------------------------
# A task function receives (spec, progress, checkpoint_path) and returns a
# JSON-friendly payload dict. It runs in the CHILD process; spec must be
# picklable. `progress(q)` must be called at least once per quantum — it is
# the heartbeat the supervisor watches.
TaskFn = Callable[[dict, Callable[[int], None], Optional[Path]], dict]

TASK_KINDS: Dict[str, TaskFn] = {}


def register_task_kind(name: str, fn: TaskFn) -> None:
    """Register a task kind (module import time, so spawn workers see it)."""
    TASK_KINDS[name] = fn


def _run_grid_cell(spec: dict, progress, checkpoint_path: Optional[Path]) -> dict:
    """The grid-sweep cell task: one ADTS run at (threshold, heuristic, mix).

    Payload matches the serial sweep's ``_run_cell`` exactly — that identity
    is what makes parallel and serial grids interchangeable.
    """
    from repro.harness.runner import run_adts

    cfg = replace(spec["config"], mix=spec["mix"])
    plan = spec.get("fault_plan")
    if plan is not None and spec.get("strip_worker_faults"):
        plan = plan.without_worker_faults()
    checkpoint = None
    if checkpoint_path is not None:
        checkpoint = CheckpointPlan(path=checkpoint_path)
    r = run_adts(
        cfg,
        heuristic=spec["heuristic"],
        thresholds=ThresholdConfig(ipc_threshold=spec["threshold"]),
        fault_plan=plan,
        progress=progress,
        checkpoint=checkpoint,
        invariants=spec.get("invariants"),
    )
    return {
        "ipc": r.ipc,
        "switches": r.scheduler.get("switches", 0),
        "benign_probability": r.scheduler.get("benign_probability", 0.0),
    }


register_task_kind("grid_cell", _run_grid_cell)


def _run_grid_batch(spec: dict, progress, checkpoint_path: Optional[Path]) -> dict:
    """A batch-of-cells task: one lockstep engine pass over many grid cells.

    ``spec["cells"]`` is a list of ``(threshold, heuristic, mix, key)``
    tuples; the payload maps each cell's journal key to the same per-cell
    dict ``_run_grid_cell`` returns, so the sweep can journal and aggregate
    batched cells interchangeably with serial ones. ``progress`` fires per
    lockstep round (all cells advance together, so rounds are the natural
    heartbeat). Mid-run checkpoints are not taken for batches — a restarted
    attempt recomputes the batch, which shared stepping keeps cheap.
    """
    from repro.harness.runner import BatchRunSpec, run_batch

    base = spec["config"]
    plan = spec.get("fault_plan")
    if plan is not None and spec.get("strip_worker_faults"):
        plan = plan.without_worker_faults()
    specs = [
        BatchRunSpec(
            config=replace(base, mix=mix),
            heuristic=h,
            thresholds=ThresholdConfig(ipc_threshold=m),
            fault_plan=plan,
        )
        for (m, h, mix, _key) in spec["cells"]
    ]
    results = run_batch(specs, progress=progress)
    return {
        "cells": {
            key: {
                "ipc": r.ipc,
                "switches": r.scheduler.get("switches", 0),
                "benign_probability": r.scheduler.get("benign_probability", 0.0),
            }
            for (_m, _h, _mix, key), r in zip(spec["cells"], results)
        }
    }


register_task_kind("grid_batch", _run_grid_batch)


def _run_service_cell(spec, progress, checkpoint_path: Optional[Path]) -> dict:
    """The simulation service's full-fidelity task: one detailed-engine run.

    ``spec["config"]`` is a picklable :class:`~repro.harness.runner.RunConfig`;
    ``spec["mode"]`` selects ADTS vs a fixed policy. Registered here (not in
    the service module) so spawn-method workers, which import only this
    module, can resolve it. ``force_crash`` is the service's breaker-trip
    fault hook: the attempt dies by SIGKILL before simulating, exercising
    the real crash-containment path rather than a synthetic exception.
    """
    if spec.get("force_crash"):
        import os
        import signal as _signal

        os.kill(os.getpid(), _signal.SIGKILL)
    from repro.harness.runner import run_adts, run_fixed

    if spec.get("trace_cache_dir"):
        # Shard-owned trace-cache segment: the service stamps each cell
        # with its shard's directory so concurrent shards never contend
        # on (or cross-pollinate) one cache.
        from repro.workloads.tracecache import set_trace_cache

        set_trace_cache(spec["trace_cache_dir"])
    cfg = spec["config"]
    plan = spec.get("fault_plan")
    if plan is not None and spec.get("strip_worker_faults"):
        plan = plan.without_worker_faults()
    checkpoint = None
    if checkpoint_path is not None:
        checkpoint = CheckpointPlan(path=checkpoint_path)
    if spec.get("mode", "adts") == "adts":
        r = run_adts(
            cfg,
            heuristic=spec.get("heuristic", "type3"),
            thresholds=ThresholdConfig(ipc_threshold=spec.get("threshold", 2.0)),
            fault_plan=plan,
            progress=progress,
            checkpoint=checkpoint,
        )
    else:
        r = run_fixed(cfg, fault_plan=plan, progress=progress, checkpoint=checkpoint)
    return {
        "ipc": r.ipc,
        "switches": r.scheduler.get("switches", 0),
        "benign_probability": r.scheduler.get("benign_probability", 0.0),
    }


register_task_kind("service_cell", _run_service_cell)


# ---------------------------------------------------------------------------
# Work items and supervisor configuration.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class WorkItem:
    """One supervised unit of work.

    ``key`` doubles as the journal key and the result key; items without a
    key are keyed by ``label``. ``spec`` is handed to the task function in
    the child and must be picklable.
    """

    label: str
    kind: str = "grid_cell"
    spec: dict = field(default_factory=dict)
    key: Optional[str] = None
    shard: Optional[int] = None  # owning shard behind a sharded front-door

    @property
    def result_key(self) -> str:
        return self.key if self.key is not None else self.label


@dataclass(frozen=True)
class ExecutorConfig:
    """Supervisor knobs.

    Attributes:
        workers: concurrent cell processes.
        run_timeout_s: hard per-attempt wall-clock limit (None = unbounded).
        heartbeat_timeout_s: kill a worker whose last heartbeat is older
            than this (None = no staleness check). Distinguishes hung from
            slow: a slow run heartbeats every quantum and is never killed
            by this limit.
        max_restarts: extra attempts per cell after the first fails.
        restart_backoff_s / backoff_factor: exponential delay before retries.
        poll_interval_s: supervisor wake-up period.
        start_method: multiprocessing start method; None picks ``fork``
            where available (cheap on Linux) else ``spawn``.
        checkpoint_dir: directory for per-cell mid-run snapshots; retries
            resume from the latest snapshot instead of recomputing finished
            quanta. None disables sub-cell checkpointing.
    """

    workers: int = 2
    run_timeout_s: Optional[float] = None
    heartbeat_timeout_s: Optional[float] = None
    max_restarts: int = 2
    restart_backoff_s: float = 0.1
    backoff_factor: float = 2.0
    poll_interval_s: float = 0.02
    start_method: Optional[str] = None
    checkpoint_dir: Optional[Path] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.run_timeout_s is not None and self.run_timeout_s <= 0:
            raise ValueError("run_timeout_s must be positive")
        if self.heartbeat_timeout_s is not None and self.heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be positive")


def _worker_main(conn, kind: str, spec: dict, checkpoint_path) -> None:
    """Child-process entry point: run the task, stream heartbeats, report.

    Wire protocol (child → parent over ``conn``):
        ("heartbeat", quantum_index)   every finished quantum
        ("result", payload)            task finished
        ("error", failure_kind, repr)  task raised (taxonomy-classified)
    A worker that dies without sending ``result``/``error`` is a *crash*
    and is classified by the parent from its exit code.
    """
    try:
        fn = TASK_KINDS[kind]

        def progress(quantum_index: int) -> None:
            conn.send(("heartbeat", quantum_index))

        payload = fn(spec, progress, checkpoint_path)
        conn.send(("result", payload))
    except InvariantViolation as exc:
        conn.send(("error", FAILURE_INVARIANT, repr(exc)))
    except BaseException as exc:  # noqa: BLE001 — report, parent decides
        conn.send(("error", FAILURE_EXCEPTION, repr(exc)))
    finally:
        conn.close()


class _Attempt:
    """One live worker process executing one item attempt."""

    __slots__ = ("item", "attempt", "proc", "conn", "started", "last_beat", "outcome")

    def __init__(self, item: WorkItem, attempt: int, proc, conn) -> None:
        self.item = item
        self.attempt = attempt
        self.proc = proc
        self.conn = conn
        now = time.monotonic()
        self.started = now
        self.last_beat = now
        self.outcome = None  # ("result", payload) | ("error", kind, repr)


@dataclass(frozen=True)
class AttemptOutcome:
    """One finished attempt, as reported by :meth:`SupervisedExecutor.pump`.

    ``payload`` is the task's result dict on success and None on failure;
    a failure also carries its taxonomy string (``failure_kind``, one of
    :data:`~repro.harness.errors.FAILURE_KINDS`) and the classified
    exception. The caller owns the retry decision.
    """

    item: WorkItem
    attempt: int
    payload: Optional[dict] = None
    failure_kind: Optional[str] = None
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.payload is not None


class SupervisedExecutor:
    """Run :class:`WorkItem` batches in supervised child processes.

    One executor may be reused across batches; :attr:`failures` accumulates
    one dict per failed attempt (``label``, ``attempt``, ``kind``,
    ``detail``) across all of them.
    """

    def __init__(self, config: Optional[ExecutorConfig] = None) -> None:
        self.config = config or ExecutorConfig()
        self.failures: List[dict] = []
        #: Dynamic concurrency cap below ``config.workers`` (None = no cap).
        #: An autoscaler lowers this to scale down WITHOUT killing anything:
        #: live attempts always run to completion, the pool just stops
        #: spawning past the cap — scale-downs can never strand a request.
        self.soft_cap: Optional[int] = None
        self._last_error: Dict[str, BaseException] = {}  # result_key -> last failure
        self._live: List[_Attempt] = []
        method = self.config.start_method
        if method is None:
            method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        self._ctx = multiprocessing.get_context(method)

    # -- streaming API ------------------------------------------------------
    @property
    def active(self) -> int:
        """Live (spawned, not yet reaped) attempts."""
        return len(self._live)

    def has_capacity(self) -> bool:
        """Whether another attempt can spawn without exceeding ``workers``
        (or the tighter :attr:`soft_cap`, when an autoscaler set one)."""
        cap = self.config.workers
        if self.soft_cap is not None:
            cap = min(cap, max(0, self.soft_cap))
        return len(self._live) < cap

    def spawn_attempt(self, item: WorkItem, attempt: int = 1) -> None:
        """Start one supervised attempt of ``item`` (non-blocking)."""
        self._live.append(self._spawn(item, attempt))

    def pump(self) -> List[AttemptOutcome]:
        """Drain heartbeats, enforce limits, reap finished attempts.

        Non-blocking; returns one :class:`AttemptOutcome` per attempt that
        finished since the last pump (success or taxonomy-classified
        failure). Retry policy is the caller's business here — ``run()``
        layers the batch retry/backoff logic on top.
        """
        self._poll(self._live)
        finished: List[AttemptOutcome] = []
        still: List[_Attempt] = []
        for att in self._live:
            done, payload = self._reap(att)
            if not done:
                still.append(att)
                continue
            if payload is not None:
                finished.append(AttemptOutcome(att.item, att.attempt, payload))
            else:
                finished.append(
                    AttemptOutcome(
                        att.item,
                        att.attempt,
                        None,
                        self.failures[-1]["kind"],
                        self._last_error.get(att.item.result_key),
                    )
                )
        self._live = still
        return finished

    def live_workers(self) -> List[dict]:
        """Liveness snapshot of the pool (for service health endpoints)."""
        return [
            {
                "label": att.item.label,
                "shard": att.item.shard,
                "attempt": att.attempt,
                "pid": att.proc.pid,
                "alive": att.proc.is_alive(),
                "age_s": time.monotonic() - att.started,
                "last_beat_age_s": time.monotonic() - att.last_beat,
            }
            for att in self._live
        ]

    def shutdown(self) -> None:
        """SIGKILL every live attempt and reap it. Idempotent."""
        live, self._live = self._live, []
        self._kill_all(live)

    # -- batch API ----------------------------------------------------------
    def run(
        self, items: List[WorkItem], journal: Optional[RunJournal] = None
    ) -> Dict[str, dict]:
        """Execute every item; return ``{item.result_key: payload}``.

        Items already present in ``journal`` are served from it without
        spawning a worker; freshly completed items are recorded to it from
        the supervisor (single journal writer). A cell that still fails
        after ``max_restarts`` restarts kills the remaining workers and
        raises :class:`~repro.harness.errors.RunFailedError` with the final
        attempt's failure chained — same contract as the serial sweep's
        ``guarded_run``.
        """
        results: Dict[str, dict] = {}
        pending: List[WorkItem] = []
        for item in items:
            payload = journal.get(item.key) if journal is not None and item.key else None
            if payload is not None:
                results[item.result_key] = payload
            else:
                pending.append(item)
        if not pending:
            return results

        attempts_done: Dict[str, int] = {}  # result_key -> attempts so far
        backlog: List[tuple] = [(0.0, i, item) for i, item in enumerate(pending)]
        try:
            while backlog or self._live:
                now = time.monotonic()
                while backlog and self.has_capacity() and backlog[0][0] <= now:
                    _, _, item = backlog.pop(0)
                    self.spawn_attempt(item, attempts_done.get(item.result_key, 0) + 1)
                for out in self.pump():
                    key = out.item.result_key
                    attempts_done[key] = out.attempt
                    if out.payload is not None:
                        results[key] = out.payload
                        if journal is not None and out.item.key:
                            journal.record(out.item.key, out.payload)
                    else:
                        retry_at = self._on_failure(out.item, out.attempt)
                        # _on_failure raised if the budget is exhausted
                        backlog.append((retry_at, len(backlog), out.item))
                        backlog.sort(key=lambda t: (t[0], t[1]))
                if self._live or backlog:
                    time.sleep(self.config.poll_interval_s)
        finally:
            self.shutdown()
        return results

    # -- internals ----------------------------------------------------------
    def _checkpoint_path(self, item: WorkItem) -> Optional[Path]:
        if self.config.checkpoint_dir is None:
            return None
        digest = hashlib.sha256(item.result_key.encode("utf-8")).hexdigest()[:16]
        return Path(self.config.checkpoint_dir) / f"cell-{digest}.snap"

    def _spawn(self, item: WorkItem, attempt: int) -> _Attempt:
        spec = item.spec
        if attempt > 1 and spec.get("fault_plan") is not None:
            # A crash/hang fault that killed attempt 1 would kill every
            # retry too — retries run the fault plan minus its
            # process-killing members (still deterministic: same seed).
            spec = {**spec, "strip_worker_faults": True}
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, item.kind, spec, self._checkpoint_path(item)),
            name=f"repro-cell-{item.label}",
            daemon=True,
        )
        proc.start()
        child_conn.close()  # parent keeps only the read end
        return _Attempt(item, attempt, proc, parent_conn)

    def _poll(self, live: List[_Attempt]) -> None:
        """Drain every live pipe; record heartbeats and final outcomes."""
        for att in live:
            self._drain(att)

    @staticmethod
    def _drain(att: _Attempt) -> None:
        try:
            while att.conn.poll():
                msg = att.conn.recv()
                if msg[0] == "heartbeat":
                    att.last_beat = time.monotonic()
                else:  # ("result", ...) or ("error", ...)
                    att.outcome = msg
        except (EOFError, OSError):
            pass  # worker side closed; exit code decides in _reap

    def _reap(self, att: _Attempt):
        """Check one attempt for completion.

        Returns ``(done, payload)``: ``(False, None)`` while running,
        ``(True, payload)`` on success, ``(True, None)`` on a failure that
        was recorded to the taxonomy (caller decides on retry).
        """
        cfg = self.config
        now = time.monotonic()
        if att.outcome is not None and att.outcome[0] == "result":
            att.proc.join()
            att.conn.close()
            return True, att.outcome[1]
        if att.outcome is not None:  # ("error", kind, repr)
            att.proc.join()
            att.conn.close()
            _, kind, detail = att.outcome
            self._record(att, kind, detail)
            return True, None
        if not att.proc.is_alive():
            # The worker may have sent its final message and exited between
            # the poll and this liveness check — drain once more before
            # declaring a crash.
            self._drain(att)
            if att.outcome is not None:
                return self._reap(att)
            # Died without a final message: crashed (segfault, OOM, kill).
            att.proc.join()
            att.conn.close()
            err = WorkerCrashError(att.item.label, att.proc.exitcode)
            self._record(att, FAILURE_CRASH, str(err), err)
            return True, None
        if cfg.run_timeout_s is not None and now - att.started > cfg.run_timeout_s:
            self._kill(att)
            err = RunTimeoutError(att.item.label, cfg.run_timeout_s)
            self._record(att, FAILURE_TIMEOUT, str(err), err)
            return True, None
        if (
            cfg.heartbeat_timeout_s is not None
            and now - att.last_beat > cfg.heartbeat_timeout_s
        ):
            self._kill(att)
            err = HeartbeatStallError(
                att.item.label, now - att.last_beat, cfg.heartbeat_timeout_s
            )
            self._record(att, FAILURE_STALLED, str(err), err)
            return True, None
        return False, None

    def _record(self, att: _Attempt, kind: str, detail: str, exc=None) -> None:
        self.failures.append(
            {
                "label": att.item.label,
                "attempt": att.attempt,
                "kind": kind,
                "detail": detail,
            }
        )
        self._last_error[att.item.result_key] = (
            exc if exc is not None else RuntimeError(detail)
        )

    def failures_for(self, labels) -> List[dict]:
        """Restart telemetry for the given work-item labels, in record
        order. The front door's dead-letter queue uses this to attach each
        crash/hang exactly as the supervisor saw it to a parked entry."""
        wanted = set(labels)
        return [dict(f) for f in self.failures if f["label"] in wanted]

    def _on_failure(self, item: WorkItem, attempt: int) -> float:
        """Decide retry-or-raise for a failed attempt.

        Returns the monotonic time before which the retry must not start;
        raises :class:`RunFailedError` when the restart budget is spent.
        """
        cfg = self.config
        if attempt > cfg.max_restarts:
            last = self._last_error.get(item.result_key)
            raise RunFailedError(item.label, attempt, last) from last
        delay = cfg.restart_backoff_s * (cfg.backoff_factor ** (attempt - 1))
        return time.monotonic() + delay

    def _kill(self, att: _Attempt) -> None:
        """SIGKILL one worker and reap it (no cooperation required)."""
        if att.proc.is_alive():
            att.proc.kill()
        att.proc.join()
        try:
            att.conn.close()
        except OSError:
            pass

    def _kill_all(self, live: List[_Attempt]) -> None:
        for att in live:
            self._kill(att)
