"""Multi-interval sampling (the paper's §5 fast-forward methodology).

"We ran simulation for a million cycles in ten randomly chosen different
intervals by taking advantage of the fast-forward feature." Our equivalent:
run the same (mix, scheduler) configuration at several *interval seeds* —
each seed drops the workload at a different point of its phase trajectory —
and aggregate. Because the trace generators are stochastic processes, a
different seed *is* a different execution interval.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Sequence

import numpy as np

from repro.harness.runner import RunConfig, RunResult


@dataclass(frozen=True)
class SampleSpec:
    """How many intervals to sample and how to derive their seeds."""

    intervals: int = 3
    base_seed: int = 0

    def seeds(self) -> List[int]:
        """The interval seeds, derived from the base seed."""
        return [self.base_seed + 7919 * i for i in range(self.intervals)]


@dataclass
class SampledResult:
    """Aggregate over sampled intervals."""

    per_interval: List[RunResult]

    @property
    def mean_ipc(self) -> float:
        return float(np.mean([r.ipc for r in self.per_interval]))

    @property
    def std_ipc(self) -> float:
        return float(np.std([r.ipc for r in self.per_interval]))

    @property
    def ipcs(self) -> List[float]:
        return [r.ipc for r in self.per_interval]


class SampledRunner:
    """Run one configuration over several sampled intervals."""

    def __init__(self, spec: SampleSpec | None = None) -> None:
        self.spec = spec or SampleSpec()

    def run(
        self,
        cfg: RunConfig,
        runner: Callable[[RunConfig], RunResult],
    ) -> SampledResult:
        """Run ``runner`` once per sampled interval and aggregate."""
        results = [runner(replace(cfg, seed=s)) for s in self.spec.seeds()]
        return SampledResult(per_interval=results)
