"""Command-line interface: ``python -m repro <command> [options]``.

Commands map one-to-one onto the experiment index (DESIGN.md §4):

    run        one simulation (fixed policy or ADTS) on a mix
    table1     the ten fixed policies, ranked
    grid       the Figure 7/8 threshold x type sweep (detailed engine)
    fastgrid   the full 13-mix grid on the fast model
    headline   ADTS (thr 2, Type 3) vs fixed ICOUNT
    scaling    throughput vs thread count
    oracle     the clairvoyant per-quantum upper bound
    resilience ADTS under a seeded fault storm vs. clean
    serve      long-running overload-safe simulation service (JSONL stdio);
               --record captures the request stream for later replay
    burst      seeded overload demo (or --emit JSONL for piping into serve)
    replay     drive recorded or shaped (diurnal/bursty/ramp) traffic into
               a service; deterministic under --workers 0
    chaosday   combined-fault campaign (scheduler + worker + service + disk
               faults) against replayed traffic; exits 0 iff the drain
               contract held and fsck quarantined nothing
    fsck       audit and repair an artifact tree (journals, checkpoints,
               trace caches, reports); exits non-zero iff it quarantined
    profile    behaviour profiles: snapshot a run's telemetry into a
               labelled artifact, designate baselines, compute drift
    mixes      list the 13 mixes
    policies   list the Table-1 policies

``run`` accepts ``--faults counters,dt,policy,hangs`` (or ``all``) to
inject seeded faults; ``grid`` accepts ``--journal PATH`` / ``--resume``
for crash-resilient checkpoint/resume sweeps and ``--workers N`` to run
cells in supervised child processes (crash containment, SIGKILL-enforced
timeouts and heartbeat-staleness limits, bounded restarts) — results are
identical to the serial sweep for any worker count. ``grid`` also accepts
``--faults disk`` to run the sweep under seeded filesystem faults (torn
writes, mid-record ENOSPC, failed renames): the storage layer recovers or
regenerates every artifact, so the aggregate is identical to a fault-free
sweep. A worker-pool ``grid``
also installs SIGINT/SIGTERM handlers that kill the pool, release the
journal lock, and exit ``128 + signum`` — Ctrl-C never leaves orphan
simulator processes or a locked journal behind.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
from dataclasses import replace
from pathlib import Path
from typing import List, Optional

from repro.faults import FaultPlan
from repro.harness.experiments import (
    ExperimentDefaults,
    experiment_fig8,
    experiment_headline,
    experiment_resilience,
    experiment_table1,
    experiment_thread_scaling,
    run_grid,
)
from repro.harness.journal import RunJournal
from repro.harness.report import format_series, format_table
from repro.harness.resilience import RetryPolicy
from repro.harness.runner import RunConfig, run_adts, run_fixed
from repro.policies.registry import POLICY_NAMES
from repro.workloads.mixes import MIXES


def _defaults(args) -> ExperimentDefaults:
    return ExperimentDefaults(
        quantum_cycles=args.quantum,
        quanta=args.quanta,
        warmup_quanta=args.warmup,
        seed=args.seed,
    )


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--quantum", type=int, default=2048, help="quantum cycles")
    p.add_argument("--quanta", type=int, default=16, help="measured quanta")
    p.add_argument("--warmup", type=int, default=4, help="warmup quanta")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true", help="emit JSON")


def _emit(args, payload: dict, text: str) -> None:
    print(json.dumps(payload, indent=2, default=str) if args.json else text)


def _fault_plan(args) -> Optional[FaultPlan]:
    """Build a FaultPlan from `--faults`/`--fault-rate`/`--fault-seed`."""
    if not args.faults:
        return None
    kinds = [k.strip() for k in args.faults.split(",") if k.strip()]
    seed = args.fault_seed if args.fault_seed is not None else args.seed
    return FaultPlan.from_kinds(kinds, rate=args.fault_rate, seed=seed)


def cmd_run(args) -> None:
    """`repro run`: one simulation (fixed or ADTS), optionally faulted."""
    cfg = RunConfig(
        mix=args.mix, quantum_cycles=args.quantum, quanta=args.quanta,
        warmup_quanta=args.warmup, seed=args.seed, policy=args.policy,
    )
    plan = _fault_plan(args)
    if args.adts:
        from repro.core.thresholds import ThresholdConfig

        result = run_adts(cfg, heuristic=args.heuristic,
                          thresholds=ThresholdConfig(ipc_threshold=args.threshold),
                          fault_plan=plan)
        text = (f"{args.mix} ADTS({args.heuristic}, thr={args.threshold}): "
                f"IPC {result.ipc:.3f}, {result.scheduler.get('switches', 0)} switches, "
                f"P(benign) {result.scheduler.get('benign_probability', 0.0):.2f}")
        if plan is not None:
            text += (f"\nfaults injected: {result.scheduler.get('faults_injected', 0)} "
                     f"{result.scheduler.get('fault_counts', {})}\n"
                     f"watchdog: {result.scheduler.get('fallback_events', 0)} fallback(s), "
                     f"{result.scheduler.get('implausible_quanta', 0)} implausible quanta, "
                     f"{result.scheduler.get('safe_mode_quanta', 0)} safe-mode quanta")
    else:
        result = run_fixed(cfg, fault_plan=plan)
        text = f"{args.mix} fixed {args.policy}: IPC {result.ipc:.3f}"
        if plan is not None:
            text += (f"\nfaults injected: {result.scheduler.get('faults_injected', 0)} "
                     f"{result.scheduler.get('fault_counts', {})}")
    _emit(args, {"ipc": result.ipc, **result.scheduler}, text)


def cmd_table1(args) -> None:
    """`repro table1`: the ten fixed policies, ranked."""
    out = experiment_table1(_defaults(args), quick=not args.full)
    rows = [[r["policy"], r["mean_ipc"]] for r in out["rows"]]
    _emit(args, out, format_table(["policy", "mean_ipc"], rows, "Table 1"))


def _install_pool_signal_handlers(executor, journal) -> None:
    """SIGINT/SIGTERM: kill the worker pool, unlock the journal, exit
    ``128 + signum`` — the conventional died-on-signal code, distinct from
    both success (0) and ordinary failure (1)."""

    def _bail(signum: int, _frame) -> None:
        print(f"signal {signum}: terminating worker pool", file=sys.stderr)
        executor.shutdown()
        if journal is not None:
            journal.close()
        # os._exit, not sys.exit: the handler runs at an arbitrary interrupt
        # point, and a SystemExit raised inside an exception-ignoring context
        # (a __del__, multiprocessing's spawn-time logging lock, ...) is
        # printed and swallowed — the grid would then run to completion and
        # exit 0 despite the signal. All teardown already happened above, so
        # a hard exit loses nothing.
        sys.stderr.flush()
        sys.stdout.flush()
        os._exit(128 + signum)

    signal.signal(signal.SIGINT, _bail)
    signal.signal(signal.SIGTERM, _bail)


def cmd_grid(args) -> None:
    """`repro grid`: the Figure 7/8 sweep on the detailed engine."""
    defaults = _defaults(args)
    plan = _fault_plan(args)
    journal = None
    if args.journal:
        journal = RunJournal(args.journal)
        if args.resume:
            info = journal.recover()
            msg = f"resuming: {info['loaded']} journaled cell(s) will be skipped"
            if info["torn_tail"]:
                msg += "; torn final line truncated"
            if info["dropped"]:
                msg += (f"; {info['dropped']} corrupt line(s) dropped"
                        f" (original quarantined to {info['quarantined']})")
            print(msg, file=sys.stderr)
        else:
            journal.clear()
    retry = None
    if args.retries > 1 or args.run_timeout is not None:
        retry = RetryPolicy(attempts=args.retries, timeout_s=args.run_timeout)
    executor = None
    if args.workers > 0:
        from repro.harness.executor import ExecutorConfig, SupervisedExecutor

        executor = SupervisedExecutor(ExecutorConfig(
            workers=args.workers,
            run_timeout_s=args.run_timeout,
            heartbeat_timeout_s=args.heartbeat_timeout,
            max_restarts=max(0, args.retries - 1),
            checkpoint_dir=args.checkpoint_dir,
        ))
        _install_pool_signal_handlers(executor, journal)
    mixes = [m.strip() for m in args.mixes.split(",") if m.strip()] if args.mixes else None
    # A disk-fault plan installs a parent-process faultfs session too, so the
    # journal appends and trace-cache flushes that happen *between* cell runs
    # are exercised — not just the writes inside each simulation.
    from contextlib import nullcontext

    from repro.storage import faultfs_session

    disk = plan.disk_plan() if plan is not None else None
    session = faultfs_session(disk) if disk is not None else nullcontext()
    with session as ffs:
        grid = run_grid(defaults, quick=not args.full, journal=journal, retry=retry,
                        executor=executor, mixes=mixes, fault_plan=plan,
                        batch=args.batch or None)
        if executor is not None and executor.failures:
            print(f"supervisor: {len(executor.failures)} failed attempt(s): " +
                  ", ".join(f"{f['label']}#{f['attempt']}:{f['kind']}"
                            for f in executor.failures),
                  file=sys.stderr)
        from repro.harness.runner import run_mix_average

        baseline = run_mix_average(grid.mixes, defaults.base_run())["mean_ipc"]
    if ffs is not None:
        print(f"disk faults injected (parent process): {ffs.faults_injected} "
              f"{ffs.counts}", file=sys.stderr)
    if journal is not None and journal.append_errors:
        print(f"journal: {journal.append_errors} append(s) failed durably; "
              f"those cells will re-run on a later resume", file=sys.stderr)
    out = experiment_fig8(grid, baseline)
    lines = [f"fixed ICOUNT baseline: {baseline:.3f}"]
    for h in grid.heuristics:
        lines.append(format_series(f"IPC[{h}]", grid.thresholds, out["ipc_vs_threshold"][h]))
        lines.append(format_series(
            f"switches[{h}]", grid.thresholds, grid.series_switches_vs_threshold(h)))
    best = out["best_cell"]
    lines.append(f"best cell: m={best['threshold']:g} {best['heuristic']} "
                 f"({out['best_improvement_over_icount']:+.1%} vs ICOUNT)")
    _emit(args, out, "\n".join(lines))


def cmd_fastgrid(args) -> None:
    """`repro fastgrid`: the 13-mix grid on the fast model."""
    import numpy as np

    from repro.core.thresholds import ThresholdConfig
    from repro.fastmodel import fast_run_adts, fast_run_fixed
    from repro.workloads import mix_names

    mixes = mix_names()
    icount = float(np.mean([
        fast_run_fixed(m, "icount", quanta=args.fast_quanta).ipc for m in mixes
    ]))
    lines = [f"fixed ICOUNT (13-mix mean, fast model): {icount:.3f}"]
    payload = {"icount": icount, "cells": {}}
    for h in ("type1", "type2", "type3", "type3g", "type4"):
        ys = []
        for m in (1.0, 2.0, 3.0, 4.0, 5.0):
            runs = [fast_run_adts(mix, h, ThresholdConfig(ipc_threshold=m),
                                  quanta=args.fast_quanta) for mix in mixes]
            ipc = float(np.mean([r.ipc for r in runs]))
            ys.append(ipc)
            payload["cells"][f"{m:g},{h}"] = ipc
        lines.append(format_series(f"IPC[{h}]", (1, 2, 3, 4, 5), ys))
    _emit(args, payload, "\n".join(lines))


def cmd_headline(args) -> None:
    """`repro headline`: ADTS best cell vs fixed ICOUNT."""
    out = experiment_headline(_defaults(args), quick=not args.full,
                              threshold=args.threshold, heuristic=args.heuristic)
    rows = [[m, v["icount_ipc"], v["adts_ipc"], f"{v['improvement']:+.1%}"]
            for m, v in out["per_mix"].items()]
    text = format_table(["mix", "icount", "adts", "gain"], rows, "Headline") + \
        f"\nmean improvement: {out['mean_improvement']:+.2%}"
    _emit(args, out, text)


def cmd_resilience(args) -> None:
    """`repro resilience`: ADTS under a seeded fault storm vs. clean."""
    out = experiment_resilience(
        _defaults(args), mix=args.mix, threshold=args.threshold,
        heuristic=args.heuristic, fault_rate=args.fault_rate,
        fault_seed=args.fault_seed,
    )
    text = (
        f"{args.mix} clean IPC {out['clean_ipc']:.3f} -> "
        f"faulty IPC {out['faulty_ipc']:.3f} "
        f"(degradation {out['ipc_degradation']:.1%})\n"
        f"faults injected: {out['faults_injected']} {out['fault_counts']}\n"
        f"watchdog: {out['fallback_events']} fallback(s), "
        f"{out['implausible_quanta']} implausible quanta, "
        f"{out['safe_mode_quanta']} safe-mode quanta, "
        f"{out['missed_decisions']} missed decisions"
    )
    _emit(args, out, text)


def _autoscaler_config(args):
    """Build an AutoscalerConfig from ``--autoscale MIN:MAX`` (or None)."""
    if not getattr(args, "autoscale", None):
        return None
    from repro.service import AutoscalerConfig

    try:
        lo, hi = (int(part) for part in args.autoscale.split(":"))
    except ValueError:
        raise SystemExit(
            f"--autoscale expects MIN:MAX (got {args.autoscale!r})"
        )
    return AutoscalerConfig(
        min_workers=lo,
        max_workers=hi,
        cooldown_s=args.autoscale_cooldown,
    )


def _service_config(args):
    from repro.service import ServiceConfig

    return ServiceConfig(
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        per_client_cap=args.per_client_cap,
        degrade_at_depth=args.degrade_at,
        max_attempts=args.max_attempts,
        breaker_failures=args.breaker_failures,
        breaker_cooldown_s=args.breaker_cooldown,
        run_timeout_s=args.run_timeout,
        heartbeat_timeout_s=args.heartbeat_timeout,
        drain_deadline_s=args.drain_deadline,
        checkpoint_dir=args.checkpoint_dir,
        journal_path=args.journal,
        fault_plan=_fault_plan(args),
        autoscaler=_autoscaler_config(args),
    )


def _build_service(args, clock=None):
    """An unsharded service, or the sharded front-door when ``--shards``
    exceeds 1, a ``--result-store`` is given (the store is worth having
    even at one shard: repeats survive restarts), or the integrity layer
    (``--verify-rate`` / ``--dlq``) is requested — the verifier and the
    dead-letter queue live in the front door."""
    from repro.service import ShardedService, SimulationService

    cfg = _service_config(args)
    shards = getattr(args, "shards", 1)
    store = getattr(args, "result_store", None)
    verify_rate = getattr(args, "verify_rate", 0.0)
    dlq_threshold = getattr(args, "dlq", 0)
    kwargs = {"clock": clock} if clock is not None else {}
    if shards > 1 or store is not None or verify_rate > 0 or dlq_threshold > 0:
        return ShardedService(
            cfg,
            shards=max(1, shards),
            store=store,
            verify_rate=verify_rate,
            verify_seed=getattr(args, "seed", 0),
            dlq_threshold=dlq_threshold,
            **kwargs,
        )
    return SimulationService(cfg, **kwargs)


def _profile_store(args):
    """The `--profile DIR` store, or None when profiling is off."""
    path = getattr(args, "profile", None)
    if not path:
        return None
    from repro.behavior import ProfileStore

    return ProfileStore(path)


def _arm_drift_guard(service, args, default_label):
    """Wire `--profile` into a service: label the run and, when the store
    has a designated baseline, attach a rolling DriftGuard. Returns the
    store (None when profiling is off)."""
    store = _profile_store(args)
    if store is None:
        return None
    service.profile_label = getattr(args, "profile_label", None) or default_label
    baseline = store.load_baseline()
    if baseline is not None:
        from repro.behavior import DriftGuard, DriftGuardConfig

        try:
            service.attach_drift_guard(
                DriftGuard(
                    baseline,
                    DriftGuardConfig(
                        degrade_on_drift=getattr(args, "drift_degrade", False)
                    ),
                )
            )
        except ValueError:
            print("profile baseline has no rate.* metrics; drift guard "
                  "disabled (offline drift still applies)", file=sys.stderr)
    return store


def _snapshot_service_profile(store, service, args, breakdown=None) -> None:
    """Capture the drained service's behaviour into the profile store."""
    if store is None:
        return
    from repro.behavior import profile_from_service

    profile = profile_from_service(
        service,
        service.profile_label or "service",
        seed=getattr(args, "seed", None),
        breakdown=breakdown,
    )
    profile_id = store.save(profile)
    print(f"behaviour profile saved: {profile_id}", file=sys.stderr)


def cmd_serve(args) -> int:
    """`repro serve`: the long-running overload-safe simulation service.

    Speaks JSON lines on stdin/stdout (see :mod:`repro.service.server`).
    SIGTERM/SIGINT — or ``{"op": "shutdown"}``, or EOF — drains gracefully:
    admission stops, in-flight work finishes or is checkpointed within the
    drain deadline, every accepted request gets its response, and the
    process exits 0. With ``--shards N`` the service becomes a sharded
    front-door: requests route by deterministic identity, identical
    in-flight requests coalesce onto one leader, and full-fidelity answers
    persist in the ``--result-store`` directory (when given) for instant
    byte-identical repeats across restarts.
    """
    from repro.service import ServeLoop

    service = _build_service(args)
    store = _arm_drift_guard(service, args, "serve")
    code = ServeLoop(
        service,
        drain_deadline_s=args.drain_deadline,
        record_path=args.record,
    ).run()
    _snapshot_service_profile(store, service, args)
    return code


def cmd_burst(args) -> None:
    """`repro burst`: the deterministic overload demo.

    Default mode submits a seeded burst to an in-process service — paused
    during submission so the (admitted, degraded, shed, rejected) breakdown
    depends only on queue state, never on timing — then runs it to
    completion and prints the breakdown. ``--emit`` instead prints the
    burst as JSONL submit lines, for piping into a running ``repro serve``.
    """
    from dataclasses import asdict

    from repro.service import (
        BurstSpec,
        breakdown,
        generate_burst,
    )

    spec = BurstSpec(
        requests=args.requests,
        seed=args.seed,
        degradable_fraction=args.degradable_fraction,
        expired_fraction=args.expired_fraction,
        quanta=args.quanta,
        warmup_quanta=args.warmup,
        quantum_cycles=args.quantum,
        num_threads=args.threads,
    )
    requests = generate_burst(spec)
    if args.emit:
        # Header first: the full generating spec rides with the output, so
        # a burst file is reproducible (and re-generatable) from itself.
        # `repro serve` acknowledges the meta line and moves on.
        print(json.dumps(
            {"op": "meta", "kind": "burst-spec", "spec": asdict(spec)},
            sort_keys=True))
        for request in requests:
            print(json.dumps({"op": "submit", "request": asdict(request)}))
        return
    service = _build_service(args)
    service.paused = True
    for request in requests:
        service.submit(request)
    service.paused = False
    service.run_until_idle(timeout_s=600)
    stats = service.drain(args.drain_deadline)
    bd = breakdown(service.take_completed())
    print(json.dumps(
        {"spec": asdict(spec), "breakdown": bd, "counters": stats["counters"],
         "breaker": stats["breaker"]},
        indent=2, default=str))


def cmd_replay(args) -> int:
    """`repro replay`: drive recorded or shaped traffic into a service.

    Input is either a ``traffic-recording`` artifact (captured with
    ``repro serve --record``) or, with ``--shape``, a freshly generated
    seeded traffic model. With ``--workers 0`` (the default) the replay
    runs in lockstep under a virtual clock and the printed breakdown is a
    pure function of (input, seed, service config); with real workers it
    is paced by the wall clock (``--time-scale`` compresses it).
    """
    from repro.service import (
        TrafficSpec,
        VirtualClock,
        breakdown,
        generate_traffic,
        load_recording,
        replay_realtime,
        replay_traffic,
    )

    if args.recording:
        events = load_recording(args.recording)
        source = {"recording": args.recording, "events": len(events)}
    else:
        spec = TrafficSpec(
            shape=args.shape,
            requests=args.requests,
            duration_s=args.duration,
            seed=args.seed,
        )
        events = generate_traffic(spec)
        source = {"shape": args.shape, "events": len(events), "seed": args.seed}
    if args.workers == 0:
        clock = VirtualClock()
        service = _build_service(args, clock=clock)
        store = _arm_drift_guard(service, args, f"replay-{args.shape}")
        responses = replay_traffic(
            service, events, clock,
            tick_s=args.tick, time_scale=args.time_scale,
        )
        clock.auto_advance_s = args.tick
    else:
        service = _build_service(args)
        store = _arm_drift_guard(service, args, f"replay-{args.shape}")
        responses = replay_realtime(service, events, time_scale=args.time_scale)
    stats = service.drain(args.drain_deadline)
    responses.extend(service.take_completed())
    bd = breakdown(responses)
    _snapshot_service_profile(store, service, args, breakdown=bd)
    print(json.dumps(
        {"source": source, "breakdown": bd,
         "counters": stats["counters"], "autoscaler": stats["autoscaler"]},
        indent=2, default=str))
    return 0


def cmd_chaosday(args) -> int:
    """`repro chaosday`: the combined-fault campaign (see
    :mod:`repro.harness.chaosday`). Exits 0 iff the drain contract held
    and the post-run fsck quarantined nothing."""
    from repro.harness.chaosday import CampaignConfig, format_report, run_campaign

    cfg = CampaignConfig(
        seed=args.seed,
        shape=args.shape,
        requests=args.requests,
        duration_s=args.duration,
        recording=args.recording,
        fault_rate=args.fault_rate,
        workers=args.workers,
        shards=args.shards,
        verify_rate=args.verify_rate,
        dlq_threshold=args.dlq,
        corrupt_rate=args.corrupt_rate,
        autoscale_min=args.autoscale_min,
        autoscale_max=args.autoscale_max,
        tick_s=args.tick,
        time_scale=args.time_scale,
        drain_deadline_s=args.drain_deadline,
        profile_store=args.profile,
        profile_label=args.profile_label,
    )
    report, exit_code = run_campaign(cfg, args.out)
    if args.json:
        print(json.dumps(report, indent=2, default=str))
    else:
        print(format_report(report))
        print(f"report: {args.out}/campaign.json", file=sys.stderr)
    return exit_code


def cmd_scaling(args) -> None:
    """`repro scaling`: throughput vs thread count."""
    out = experiment_thread_scaling(_defaults(args), mix=args.mix)
    rows = [[r["threads"], r["icount_ipc"], r["adts_ipc"]] for r in out["rows"]]
    _emit(args, out, format_table(["threads", "icount", "adts"], rows, "Scaling"))


def cmd_oracle(args) -> None:
    """`repro oracle`: clairvoyant per-quantum upper bound."""
    from repro import build_processor
    from repro.core.oracle import oracle_upper_bound

    def make():
        return build_processor(mix=args.mix, seed=args.seed,
                               quantum_cycles=args.quantum)

    out = oracle_upper_bound(make, quanta=args.quanta)
    text = (f"oracle {out['oracle_ipc']:.3f} vs fixed ICOUNT "
            f"{out['fixed_icount_ipc']:.3f} (headroom {out['headroom']:+.2%}); "
            f"usage {out['policy_usage']}")
    _emit(args, out, text)


def _snapshot_bench_profile(args, payload: dict, default_label: str) -> None:
    """Capture a bench report into the `--profile` store (no-op without)."""
    store = _profile_store(args)
    if store is None:
        return
    from repro.behavior import profile_from_bench

    label = getattr(args, "profile_label", None) or default_label
    profile_id = store.save(profile_from_bench(payload, label))
    print(f"behaviour profile saved: {profile_id}", file=sys.stderr)


def cmd_bench(args) -> int:
    """`repro bench`: deterministic wall-clock benchmarks.

    ``--baseline PATH`` turns the run into a regression gate (exit 1 when
    any rate falls more than ``--band`` below the committed baseline);
    ``--profile-stages`` prints the per-stage wall-clock breakdown;
    ``--cprofile PATH`` additionally dumps a cProfile of the detailed
    benchmark for offline ``pstats``/snakeviz analysis.

    ``--sweep`` runs the aggregate sweep-throughput family instead (batch
    engine vs sequential cells on a small ADTS grid). It doubles as a
    correctness gate: exit 1 if the batch results are not bit-identical to
    sequential, or if ``--sweep-floor X`` is given and the measured
    batch-vs-sequential speedup falls below X.
    """
    from repro.perf.bench import (
        compare_to_baseline,
        format_report,
        run_benchmarks,
    )

    if args.sweep:
        from repro.perf.bench import run_sweep_benchmarks, write_report

        report = run_sweep_benchmarks(quick=args.quick, seed=args.seed)
        payload = report.to_dict()
        if args.out:
            write_report(args.out, payload)
            print(f"wrote {args.out}", file=sys.stderr)
        _snapshot_bench_profile(args, payload, "bench-sweep")
        _emit(args, payload, format_report(report))
        entry = report.benchmarks["sweep_throughput"]
        if not entry["bit_identical"]:
            print("FAIL: batch sweep results diverged from sequential",
                  file=sys.stderr)
            return 1
        if args.sweep_floor is not None:
            speedup = entry["speedup_batch_vs_sequential"]
            if speedup < args.sweep_floor:
                print(f"FAIL: sweep speedup {speedup:.2f}x below floor "
                      f"{args.sweep_floor:.2f}x", file=sys.stderr)
                return 1
            print(f"sweep speedup {speedup:.2f}x >= floor "
                  f"{args.sweep_floor:.2f}x", file=sys.stderr)
        return 0

    if args.cprofile:
        import cProfile

        from repro.perf.bench import _detailed_fixed

        profiler = cProfile.Profile()
        profiler.enable()
        _detailed_fixed(args.seed, 4 if args.quick else 8)
        profiler.disable()
        profiler.dump_stats(args.cprofile)
        print(f"cProfile dump written to {args.cprofile}", file=sys.stderr)

    report = run_benchmarks(quick=args.quick, seed=args.seed,
                            trace_cache_dir=args.trace_cache)
    payload = report.to_dict()

    if args.profile_stages:
        from repro import build_processor
        from repro.perf.profiler import StageProfiler

        proc = build_processor(mix="mix07", seed=args.seed, policy="icount",
                               quantum_cycles=1024)
        prof = StageProfiler(proc)
        with prof:
            proc.run_quanta(4 if args.quick else 8)
        payload["stage_profile"] = prof.report()

    if args.out:
        from repro.perf.bench import write_report

        write_report(args.out, payload)
        print(f"wrote {args.out}", file=sys.stderr)
    _snapshot_bench_profile(args, payload,
                            "bench-quick" if args.quick else "bench")

    text = format_report(report)
    if args.profile_stages:
        text += "\n  stage shares: " + ", ".join(
            f"{name} {entry['share']:.0%}"
            for name, entry in payload["stage_profile"].items())
    _emit(args, payload, text)

    if args.baseline:
        failures = compare_to_baseline(report, args.baseline, band=args.band)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"baseline check passed ({args.baseline}, "
              f"band {args.band:.0%})", file=sys.stderr)
    return 0


def cmd_fsck(args) -> int:
    """`repro fsck`: audit and repair an artifact tree.

    Scans ``root`` for journals, checkpoints, trace caches and reports;
    repairs what is safely repairable (torn journal tails truncated,
    legacy formats migrated forward, stale atomic-write temps removed)
    and quarantines unrepairable files to ``*.corrupt``. Exits non-zero
    iff something was quarantined, so scripts can gate on real damage.
    ``--dry-run`` classifies without touching disk.
    """
    from repro.storage import fsck_tree

    report = fsck_tree(args.root, repair=not args.dry_run)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.format_text())
    return report.exit_code


def cmd_dlq(args) -> int:
    """`repro dlq`: manage the poison-pill dead-letter queue.

    ``list`` shows every parked identity with its refusal reason and
    strike count; ``retry DIGEST`` un-parks one identity so its next
    submission simulates again (e.g. after an engine fix); ``purge``
    drops every entry. Operates on the DLQ directory under a result
    store (``<store>/dlq``), the same one a front door started with
    ``--result-store`` uses — entries parked by a service are visible
    here after it exits, and retries here are honored by the next one.
    """
    from repro.service import DeadLetterQueue

    root = Path(args.store) / "dlq"
    dlq = DeadLetterQueue(root)
    if args.action == "list":
        entries = dlq.entries()
        if args.json:
            print(json.dumps({"root": str(root), "entries": entries},
                             indent=2, sort_keys=True, default=str))
        elif not entries:
            print(f"dlq empty ({root})")
        else:
            for e in entries:
                print(f"{e['identity']}  {e.get('reason', '?')}  "
                      f"strikes={len(e.get('attempts', []))}")
        return 0
    if args.action == "retry":
        if not args.digest:
            print("retry requires a DIGEST", file=sys.stderr)
            return 2
        ok = dlq.retry(args.digest)
        print(f"{'retried' if ok else 'not parked'}: {args.digest}")
        return 0 if ok else 1
    removed = dlq.purge()
    print(f"purged {removed} entr{'y' if removed == 1 else 'ies'}")
    return 0


def cmd_profile_snapshot(args) -> int:
    """`repro profile snapshot`: run one simulation and capture its
    behaviour (counters, switch telemetry, watchdog/fault counters) as a
    labelled profile artifact. The profile id is content-addressed, so the
    same seed and config always produce the same id, byte-identically —
    and `--faults` perturbations move the id and the metrics with it."""
    from repro.behavior import ProfileStore, profile_from_sim

    cfg = RunConfig(
        mix=args.mix, quantum_cycles=args.quantum, quanta=args.quanta,
        warmup_quanta=args.warmup, seed=args.seed, policy=args.policy,
    )
    plan = _fault_plan(args)
    if args.adts:
        from repro.core.thresholds import ThresholdConfig

        result = run_adts(cfg, heuristic=args.heuristic,
                          thresholds=ThresholdConfig(ipc_threshold=args.threshold),
                          fault_plan=plan)
    else:
        result = run_fixed(cfg, fault_plan=plan)
    profile = profile_from_sim(
        {"ipc": result.ipc, **result.scheduler},
        args.label,
        seed=args.seed,
        config_fields={
            "mix": args.mix, "policy": args.policy, "adts": args.adts,
            "heuristic": args.heuristic if args.adts else None,
            "quantum_cycles": args.quantum, "quanta": args.quanta,
            "warmup_quanta": args.warmup, "faults": args.faults or "",
            "fault_rate": args.fault_rate if args.faults else 0.0,
        },
        window={"quanta": args.quanta, "warmup_quanta": args.warmup},
    )
    store = ProfileStore(args.store)
    profile_id = store.save(profile)
    if args.baseline:
        store.set_baseline(profile_id)
    print(profile_id)
    return 0


def cmd_profile_import(args) -> int:
    """`repro profile import`: the migration shim — convert committed
    bench reports (BENCH_PR4.json, BENCH_PR9.json) or chaos-campaign
    reports into behaviour-profile artifacts."""
    from repro.behavior import ProfileStore
    from repro.storage import ArtifactError

    store = ProfileStore(args.store)
    code = 0
    for path in args.paths:
        try:
            profile_id = store.import_report(path, args.label)
        except (OSError, ArtifactError, ValueError) as exc:
            print(f"SKIP {path}: {exc}", file=sys.stderr)
            code = 1
        else:
            print(f"{path} -> {profile_id}")
    return code


def cmd_profile_list(args) -> int:
    """`repro profile list`: inventory of the store (`*` = baseline)."""
    from repro.behavior import ProfileStore

    entries = ProfileStore(args.store).list_profiles()
    if args.json:
        print(json.dumps(entries, indent=2, sort_keys=True, default=str))
        return 0
    if not entries:
        print(f"no profiles in {args.store}")
        return 0
    for e in entries:
        mark = "*" if e.get("baseline") else " "
        if "error" in e:
            print(f"{mark} {e['id']}  UNREADABLE: {e['error']}")
        else:
            print(f"{mark} {e['id']}  source={e['source']} "
                  f"metrics={e['metrics']} seed={e['seed']}")
    return 0


def cmd_profile_baseline(args) -> int:
    """`repro profile baseline`: designate the store's baseline."""
    from repro.behavior import ProfileStore

    try:
        ProfileStore(args.store).set_baseline(args.id)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(f"baseline -> {args.id}")
    return 0


def cmd_profile_drift(args) -> int:
    """`repro profile drift`: compare a profile against the baseline.

    Exits 0 on `ok`, 1 on `drift` (or on `warn` with `--fail-on-warn`);
    the report is deterministic — the same pair of profiles always prints
    the same bytes."""
    from repro.behavior import DriftConfig, ProfileStore, compute_drift
    from repro.storage import ArtifactError

    store = ProfileStore(args.store)
    try:
        current = store.load(args.id)
        baseline_id = args.baseline or store.baseline_id()
        if baseline_id is None:
            print("no baseline designated (run `repro profile baseline ID` "
                  "first, or pass --baseline ID)", file=sys.stderr)
            return 2
        baseline = store.load(baseline_id)
    except (OSError, ArtifactError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    kwargs = {}
    if args.rel_tol is not None:
        kwargs["rel_tol"] = args.rel_tol
    if args.abs_floor is not None:
        kwargs["abs_floor"] = args.abs_floor
    if args.ignore:
        kwargs["ignore"] = tuple(
            frag.strip() for frag in args.ignore.split(",") if frag.strip()
        )
    report = compute_drift(baseline, current, DriftConfig(**kwargs))
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
    failed = report.verdict == "drift" or (
        args.fail_on_warn and report.verdict == "warn"
    )
    return 1 if failed else 0


def cmd_mixes(args) -> None:
    """`repro mixes`: list the 13 mixes."""
    rows = [[m.name, m.int_count, m.fp_count, f"{m.similarity():.2f}", m.description]
            for m in MIXES]
    payload = {m.name: {"apps": m.apps, "description": m.description} for m in MIXES}
    _emit(args, payload,
          format_table(["mix", "int", "fp", "similarity", "description"], rows))


def cmd_policies(args) -> None:
    """`repro policies`: list the Table-1 policies."""
    _emit(args, {"policies": POLICY_NAMES}, "\n".join(POLICY_NAMES))


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="ADTS/SMT reproduction harness")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="one simulation run")
    p.add_argument("mix", nargs="?", default="mix07")
    p.add_argument("--policy", default="icount", choices=POLICY_NAMES)
    p.add_argument("--adts", action="store_true")
    p.add_argument("--heuristic", default="type3")
    p.add_argument("--threshold", type=float, default=2.0)
    p.add_argument("--faults", default=None, metavar="KINDS",
                   help="inject seeded faults: comma list of "
                        "counters,dt,policy,hangs (or 'all')")
    p.add_argument("--fault-rate", type=float, default=0.25,
                   help="per-quantum-boundary fault probability")
    p.add_argument("--fault-seed", type=int, default=None,
                   help="fault-stream seed (default: the run seed)")
    _add_common(p)
    p.set_defaults(func=cmd_run)

    for name, func, extra in (
        ("table1", cmd_table1, ()),
        ("grid", cmd_grid, ("--journal",)),
        ("headline", cmd_headline, ("--threshold", "--heuristic")),
        ("scaling", cmd_scaling, ("mix",)),
        ("oracle", cmd_oracle, ("mix",)),
    ):
        p = sub.add_parser(name, help=f"{name} experiment")
        if "mix" in extra:
            p.add_argument("mix", nargs="?", default="mix05")
        if "--threshold" in extra:
            p.add_argument("--threshold", type=float, default=2.0)
            p.add_argument("--heuristic", default="type3")
        if "--journal" in extra:
            p.add_argument("--journal", default=None, metavar="PATH",
                           help="JSONL run journal for checkpoint/resume")
            p.add_argument("--resume", action="store_true",
                           help="skip cells already in the journal")
            p.add_argument("--retries", type=int, default=1,
                           help="attempts per cell before giving up")
            p.add_argument("--run-timeout", type=float, default=None,
                           help="per-cell wall-clock budget in seconds")
            p.add_argument("--workers", type=int, default=0, metavar="N",
                           help="run cells in N supervised child processes "
                                "(0 = serial, in-process)")
            p.add_argument("--heartbeat-timeout", type=float, default=None,
                           help="kill a worker whose last per-quantum "
                                "heartbeat is older than this many seconds")
            p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                           help="directory for per-cell mid-run snapshots; "
                                "retries resume instead of recomputing")
            p.add_argument("--batch", type=int, default=0, metavar="N",
                           help="simulate N cells per lockstep batch-engine "
                                "pass (0 = one run per cell); bit-identical "
                                "results, per-cell journal keys — any batch "
                                "size resumes any other")
            p.add_argument("--mixes", default=None, metavar="M1,M2",
                           help="comma list of mixes (overrides quick/full)")
            p.add_argument("--faults", default=None, metavar="KINDS",
                           help="inject seeded faults into the sweep: comma "
                                "list from counters,dt,policy,hangs,worker,"
                                "disk (or 'all'); 'disk' exercises the "
                                "storage layer without changing results")
            p.add_argument("--fault-rate", type=float, default=0.25,
                           help="per-draw fault probability")
            p.add_argument("--fault-seed", type=int, default=None,
                           help="fault-stream seed (default: the run seed)")
        p.add_argument("--full", action="store_true",
                       help="all 13 mixes (slow) instead of the quick set")
        _add_common(p)
        p.set_defaults(func=func)

    p = sub.add_parser("resilience", help="ADTS under a seeded fault storm")
    p.add_argument("mix", nargs="?", default="mix05")
    p.add_argument("--threshold", type=float, default=2.0)
    p.add_argument("--heuristic", default="type3")
    p.add_argument("--fault-rate", type=float, default=0.35)
    p.add_argument("--fault-seed", type=int, default=0)
    _add_common(p)
    p.set_defaults(func=cmd_resilience)

    p = sub.add_parser("fastgrid", help="full grid on the fast model")
    p.add_argument("--fast-quanta", type=int, default=96)
    _add_common(p)
    p.set_defaults(func=cmd_fastgrid)

    def _add_service_opts(p: argparse.ArgumentParser, workers: int) -> None:
        p.add_argument("--workers", type=int, default=workers, metavar="N",
                       help="supervised full-fidelity worker processes "
                            "(0 = run the full tier inline)")
        p.add_argument("--queue-capacity", type=int, default=16,
                       help="admission queue bound")
        p.add_argument("--per-client-cap", type=int, default=None,
                       help="max queued jobs per client (default: half the "
                            "queue capacity)")
        p.add_argument("--degrade-at", type=int, default=None, metavar="DEPTH",
                       help="queue depth at which degradable requests are "
                            "served by the fast model (default: capacity)")
        p.add_argument("--max-attempts", type=int, default=1,
                       help="full-tier attempts per request before fallback")
        p.add_argument("--breaker-failures", type=int, default=3,
                       help="consecutive failures that open the breaker")
        p.add_argument("--breaker-cooldown", type=float, default=5.0,
                       help="seconds before an open breaker half-opens")
        p.add_argument("--run-timeout", type=float, default=None,
                       help="per-attempt wall-clock budget in seconds")
        p.add_argument("--heartbeat-timeout", type=float, default=None,
                       help="kill a worker whose last heartbeat is older "
                            "than this many seconds")
        p.add_argument("--drain-deadline", type=float, default=10.0,
                       help="graceful-drain budget in seconds")
        p.add_argument("--journal", default=None, metavar="PATH",
                       help="response journal: completed full-fidelity "
                            "payloads are served as instant hits")
        p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="mid-run snapshot directory for killed stragglers")
        p.add_argument("--faults", default=None, metavar="KINDS",
                       help="service chaos hooks: comma list including "
                            "'service' (overload + breaker-trip draws)")
        p.add_argument("--fault-rate", type=float, default=0.25)
        p.add_argument("--fault-seed", type=int, default=None)
        p.add_argument("--autoscale", default=None, metavar="MIN:MAX",
                       help="scale the worker pool between MIN and MAX on "
                            "queue depth / deadline misses / breaker state")
        p.add_argument("--autoscale-cooldown", type=float, default=0.5,
                       help="minimum seconds between scale events")
        p.add_argument("--shards", type=int, default=1, metavar="N",
                       help="route through a sharded front-door of N "
                            "shard services (identity routing, request "
                            "coalescing; > 1 implies sharded mode)")
        p.add_argument("--result-store", default=None, metavar="DIR",
                       help="content-addressed durable result store; "
                            "repeated requests are answered from disk, "
                            "byte-identical, across restarts (enables the "
                            "sharded front-door even with --shards 1)")
        p.add_argument("--verify-rate", type=float, default=0.0,
                       metavar="RATE",
                       help="shadow-verify this seeded fraction of served "
                            "full-fidelity results by re-executing them on "
                            "another shard; divergent results are "
                            "quarantined and re-run best-2-of-3 (enables "
                            "the sharded front-door)")
        p.add_argument("--dlq", type=int, default=0, metavar="STRIKES",
                       help="park an identity in the dead-letter queue "
                            "after this many engine failures across "
                            "retries and shards; parked identities get an "
                            "immediate dlq-parked:<kind> refusal "
                            "(0 disables; enables the sharded front-door)")
        p.add_argument("--seed", type=int, default=0)

    def _add_profile_opts(p: argparse.ArgumentParser,
                          guard: bool = False) -> None:
        p.add_argument("--profile", default=None, metavar="DIR",
                       help="behaviour-profile store: snapshot this run's "
                            "behaviour into DIR at exit; when DIR has a "
                            "designated baseline, also run a rolling "
                            "DriftGuard against it")
        p.add_argument("--profile-label", default=None, metavar="LABEL",
                       help="label for the captured profile (default: "
                            "derived from the command)")
        if guard:
            p.add_argument("--drift-degrade", action="store_true",
                           help="while the drift guard holds sustained "
                                "drift, serve degradable requests with the "
                                "fast model (answered exactly once, never "
                                "dropped)")

    p = sub.add_parser("serve",
                       help="overload-safe simulation service (JSONL stdio)")
    p.add_argument("--record", default=None, metavar="PATH",
                   help="capture the submitted request stream (with arrival "
                        "offsets) as a traffic-recording artifact at drain, "
                        "for later `repro replay`")
    _add_service_opts(p, workers=2)
    _add_profile_opts(p, guard=True)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("replay",
                       help="replay recorded or shaped traffic into a service")
    p.add_argument("recording", nargs="?", default=None,
                   help="traffic-recording artifact (from `repro serve "
                        "--record`); omit to generate --shape traffic")
    p.add_argument("--shape", default="diurnal",
                   choices=("uniform", "diurnal", "bursty", "ramp"),
                   help="synthetic traffic model when no recording is given")
    p.add_argument("--requests", type=int, default=200)
    p.add_argument("--duration", type=float, default=30.0,
                   help="virtual length of generated traffic, seconds")
    p.add_argument("--tick", type=float, default=0.05,
                   help="virtual-clock step per replay iteration (workers=0)")
    p.add_argument("--time-scale", type=float, default=1.0,
                   help="arrival-time multiplier (0.1 = 10x faster)")
    _add_service_opts(p, workers=0)
    _add_profile_opts(p, guard=True)
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser("chaosday",
                       help="combined-fault campaign against replayed traffic")
    p.add_argument("--out", default="chaosday-out", metavar="DIR",
                   help="campaign artifact directory (journal, traffic, "
                        "report)")
    p.add_argument("--recording", default=None, metavar="PATH",
                   help="replay this traffic-recording instead of generating")
    p.add_argument("--shape", default="diurnal",
                   choices=("uniform", "diurnal", "bursty", "ramp"))
    p.add_argument("--requests", type=int, default=120)
    p.add_argument("--duration", type=float, default=30.0)
    p.add_argument("--fault-rate", type=float, default=0.1,
                   help="shared rate for the service and disk fault families")
    p.add_argument("--workers", type=int, default=0,
                   help="0 = deterministic inline lockstep (default); N > 0 "
                        "= real supervised pool (adds worker crash/hang "
                        "faults, wall-clock paced)")
    p.add_argument("--shards", type=int, default=1,
                   help="> 1 = run the campaign through the sharded "
                        "front-door (coalescing, leases, and a result "
                        "store at OUT/resultstore under disk faults)")
    p.add_argument("--verify-rate", type=float, default=0.0,
                   help="shadow-verification sampling rate (> 0 implies "
                        "the sharded front-door)")
    p.add_argument("--dlq", type=int, default=0, metavar="STRIKES",
                   help="dead-letter-queue parking threshold (> 0 implies "
                        "the sharded front-door; 0 disables)")
    p.add_argument("--corrupt-rate", type=float, default=0.0,
                   help="inject seeded silent corruption into this "
                        "fraction of served results; the campaign then "
                        "passes only if verification caught every event")
    p.add_argument("--autoscale-min", type=int, default=1)
    p.add_argument("--autoscale-max", type=int, default=4)
    p.add_argument("--tick", type=float, default=0.05)
    p.add_argument("--time-scale", type=float, default=1.0)
    p.add_argument("--drain-deadline", type=float, default=15.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true",
                   help="print the full campaign report JSON")
    _add_profile_opts(p)
    p.set_defaults(func=cmd_chaosday)

    p = sub.add_parser("burst", help="seeded overload demo")
    p.add_argument("--requests", type=int, default=200)
    p.add_argument("--degradable-fraction", type=float, default=0.8)
    p.add_argument("--expired-fraction", type=float, default=0.1)
    p.add_argument("--quanta", type=int, default=2)
    p.add_argument("--warmup", type=int, default=1)
    p.add_argument("--quantum", type=int, default=256)
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--emit", action="store_true",
                   help="print the burst as JSONL submit lines (for piping "
                        "into `repro serve`) instead of running the demo")
    _add_service_opts(p, workers=2)
    p.set_defaults(func=cmd_burst)

    p = sub.add_parser("bench", help="wall-clock performance benchmarks")
    p.add_argument("--quick", action="store_true",
                   help="CI smoke variant: fewer quanta and repeats")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the full report JSON (e.g. BENCH_PR4.json)")
    p.add_argument("--baseline", default=None, metavar="PATH",
                   help="regression-gate against a committed report JSON")
    p.add_argument("--band", type=float, default=0.40,
                   help="allowed fractional rate drop vs the baseline")
    p.add_argument("--profile-stages", action="store_true",
                   help="include the per-stage wall-clock breakdown")
    p.add_argument("--cprofile", default=None, metavar="PATH",
                   help="dump a cProfile of the detailed benchmark")
    p.add_argument("--trace-cache", default=None, metavar="DIR",
                   help="persistent dir for the trace-cache benchmark "
                        "(default: a throwaway temp dir)")
    p.add_argument("--sweep", action="store_true",
                   help="benchmark aggregate sweep throughput: batched "
                        "lockstep engine vs sequential cells on a small "
                        "grid, gated on bit-identical fingerprints")
    p.add_argument("--sweep-floor", type=float, default=None, metavar="X",
                   help="with --sweep: exit 1 unless batch/sequential "
                        "speedup is at least X (e.g. 1.2)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true", help="emit JSON")
    _add_profile_opts(p)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("dlq", help="manage the poison-pill dead-letter queue")
    p.add_argument("action", choices=("list", "retry", "purge"),
                   help="list parked identities, un-park one, or drop all")
    p.add_argument("digest", nargs="?", default=None,
                   help="identity digest (required for retry)")
    p.add_argument("--store", required=True, metavar="DIR",
                   help="result-store directory whose dlq/ to manage")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable listings")
    p.set_defaults(func=cmd_dlq)

    p = sub.add_parser("fsck", help="audit and repair an artifact tree")
    p.add_argument("root", nargs="?", default=".",
                   help="directory (or single file) to scan")
    p.add_argument("--dry-run", action="store_true",
                   help="classify only; change nothing on disk")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable report")
    p.set_defaults(func=cmd_fsck)

    p = sub.add_parser("profile",
                       help="behaviour profiles: snapshot, baseline, drift")
    psub = p.add_subparsers(dest="action", required=True)

    ps = psub.add_parser("snapshot",
                         help="run one simulation and capture its behaviour")
    ps.add_argument("--store", required=True, metavar="DIR",
                    help="profile store directory")
    ps.add_argument("--label", required=True,
                    help="profile label (id = label-<digest>)")
    ps.add_argument("--mix", default="mix07")
    ps.add_argument("--policy", default="icount", choices=POLICY_NAMES)
    ps.add_argument("--adts", action="store_true")
    ps.add_argument("--heuristic", default="type3")
    ps.add_argument("--threshold", type=float, default=2.0)
    ps.add_argument("--faults", default=None, metavar="KINDS",
                    help="seeded fault injection (the drift-demo knob): "
                         "comma list of counters,dt,policy,hangs or 'all'")
    ps.add_argument("--fault-rate", type=float, default=0.25)
    ps.add_argument("--fault-seed", type=int, default=None)
    ps.add_argument("--baseline", action="store_true",
                    help="designate the captured profile as the baseline")
    _add_common(ps)
    ps.set_defaults(func=cmd_profile_snapshot)

    ps = psub.add_parser("import",
                         help="convert bench/campaign reports into profiles")
    ps.add_argument("paths", nargs="+", metavar="PATH",
                    help="bench report (e.g. BENCH_PR4.json) or "
                         "chaos-campaign report")
    ps.add_argument("--store", required=True, metavar="DIR")
    ps.add_argument("--label", default=None,
                    help="override the label (default: the file stem)")
    ps.set_defaults(func=cmd_profile_import)

    ps = psub.add_parser("list", help="inventory the profile store")
    ps.add_argument("--store", required=True, metavar="DIR")
    ps.add_argument("--json", action="store_true")
    ps.set_defaults(func=cmd_profile_list)

    ps = psub.add_parser("baseline",
                         help="designate a profile as the store baseline")
    ps.add_argument("id", help="profile id (see `repro profile list`)")
    ps.add_argument("--store", required=True, metavar="DIR")
    ps.set_defaults(func=cmd_profile_baseline)

    ps = psub.add_parser("drift",
                         help="compare a profile against the baseline")
    ps.add_argument("id", help="profile id to judge")
    ps.add_argument("--store", required=True, metavar="DIR")
    ps.add_argument("--baseline", default=None, metavar="ID",
                    help="compare against this profile instead of the "
                         "store's designated baseline")
    ps.add_argument("--rel-tol", type=float, default=None,
                    help="relative tolerance for deterministic metrics "
                         "(default 0.05)")
    ps.add_argument("--abs-floor", type=float, default=None,
                    help="scale floor for near-zero metrics (default 1.0)")
    ps.add_argument("--ignore", default=None, metavar="FRAGS",
                    help="comma list of metric-name fragments to exclude")
    ps.add_argument("--fail-on-warn", action="store_true",
                    help="exit 1 on `warn` too, not just `drift`")
    ps.add_argument("--json", action="store_true",
                    help="print the full deterministic DriftReport")
    ps.set_defaults(func=cmd_profile_drift)

    for name, func in (("mixes", cmd_mixes), ("policies", cmd_policies)):
        p = sub.add_parser(name, help=f"list {name}")
        p.add_argument("--json", action="store_true")
        p.set_defaults(func=func)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        rc = args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
    return rc if isinstance(rc, int) else 0


if __name__ == "__main__":
    sys.exit(main())
