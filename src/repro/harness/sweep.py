"""The Figure 7/8 parameter grid: IPC threshold × heuristic type.

One grid run produces everything both figures plot — per-cell mean IPC
(Fig 8), switch counts (Fig 7 a/b) and benign-switch probability
(Fig 7 c/d) — so the benchmarks share a single sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.thresholds import ThresholdConfig
from repro.faults import FaultPlan
from repro.harness.journal import RunJournal
from repro.harness.resilience import RetryPolicy, guarded_run
from repro.harness.runner import RunConfig, run_adts

Cell = Tuple[float, str]  # (ipc_threshold, heuristic)


@dataclass
class SweepResult:
    """Results of a threshold × type grid over a set of mixes."""

    thresholds: List[float]
    heuristics: List[str]
    mixes: List[str]
    #: (threshold, heuristic) -> mean aggregate IPC over mixes
    ipc: Dict[Cell, float] = field(default_factory=dict)
    #: (threshold, heuristic) -> total switches over mixes
    switches: Dict[Cell, int] = field(default_factory=dict)
    #: (threshold, heuristic) -> P(benign switch), switch-weighted
    benign: Dict[Cell, float] = field(default_factory=dict)
    #: (threshold, heuristic, mix) -> per-mix IPC
    per_mix_ipc: Dict[Tuple[float, str, str], float] = field(default_factory=dict)

    def series_ipc_vs_threshold(self, heuristic: str) -> List[float]:
        """Fig 8(a)/(c): IPC as a function of the threshold, one type."""
        return [self.ipc[(m, heuristic)] for m in self.thresholds]

    def series_ipc_vs_type(self, threshold: float) -> List[float]:
        """Fig 8(b)/(d): IPC as a function of the type, one threshold."""
        return [self.ipc[(threshold, h)] for h in self.heuristics]

    def series_switches_vs_threshold(self, heuristic: str) -> List[int]:
        """Fig 7(a)."""
        return [self.switches[(m, heuristic)] for m in self.thresholds]

    def series_switches_vs_type(self, threshold: float) -> List[int]:
        """Fig 7(b)."""
        return [self.switches[(threshold, h)] for h in self.heuristics]

    def series_benign_vs_threshold(self, heuristic: str) -> List[float]:
        """Fig 7(c)."""
        return [self.benign[(m, heuristic)] for m in self.thresholds]

    def series_benign_vs_type(self, threshold: float) -> List[float]:
        """Fig 7(d)."""
        return [self.benign[(threshold, h)] for h in self.heuristics]

    def best_cell(self) -> Cell:
        """The (threshold, type) with the highest mean IPC — the paper's
        'threshold 2, Type 3' claim.

        Ties are broken deterministically — lowest threshold first, then
        lexicographic heuristic name — so the reported best cell never
        depends on dict insertion order (which would differ between a fresh
        sweep and one reassembled from a journal or a parallel executor).
        """
        return min(self.ipc, key=lambda cell: (-self.ipc[cell], cell[0], cell[1]))


def _grid_cell_key(
    base: RunConfig, m: float, h: str, mix: str,
    fault_plan: Optional[FaultPlan] = None,
) -> str:
    """Journal key identifying one grid cell *and* the run parameters that
    determine its result — a resumed sweep with different parameters must
    not silently reuse stale cells.

    A ``faults`` field is included only when the plan carries
    *result-affecting* (scheduler) faults: disk faults never change cell
    payloads (artifacts are recovered or regenerated), so a disk-chaos
    sweep shares keys — and therefore journals and aggregates — with a
    fault-free one.
    """
    fields = dict(
        kind="grid",
        threshold=m,
        heuristic=h,
        mix=mix,
        seed=base.seed,
        num_threads=base.num_threads,
        quantum_cycles=base.quantum_cycles,
        quanta=base.quanta,
        warmup_quanta=base.warmup_quanta,
    )
    if fault_plan is not None and fault_plan.any_scheduler_enabled:
        fields["faults"] = repr(fault_plan)
    return RunJournal.cell_key(**fields)


def _run_cell(
    base: RunConfig, m: float, h: str, mix: str, retry: Optional[RetryPolicy],
    fault_plan: Optional[FaultPlan] = None,
) -> Dict:
    th = ThresholdConfig(ipc_threshold=m)
    r = guarded_run(
        lambda: run_adts(
            replace(base, mix=mix), heuristic=h, thresholds=th,
            fault_plan=fault_plan,
        ),
        retry=retry,
        label=f"grid[thr={m:g},{h},{mix}]",
    )
    return {
        "ipc": r.ipc,
        "switches": r.scheduler.get("switches", 0),
        "benign_probability": r.scheduler.get("benign_probability", 0.0),
    }


def _run_batched_cells(
    base: RunConfig,
    thresholds: Sequence[float],
    heuristics: Sequence[str],
    mixes: Sequence[str],
    batch: int,
    journal: Optional[RunJournal],
    executor: Optional["SupervisedExecutor"],
    fault_plan: Optional[FaultPlan],
    payloads: Dict[str, Dict],
) -> None:
    """Run the grid's unjournaled cells in lockstep batches of ``batch``.

    Journal keys stay strictly per-cell (the same ``_grid_cell_key`` the
    serial path uses), so a sweep journaled at one batch size resumes at
    any other — including ``--batch 1`` and the serial path. Cells already
    in the journal are served before batches are formed and never
    re-simulated.
    """
    pending: List[tuple] = []
    for m in thresholds:
        for h in heuristics:
            for mix in mixes:
                key = _grid_cell_key(base, m, h, mix, fault_plan)
                served = journal.get(key) if journal is not None else None
                if served is not None:
                    payloads[key] = served
                else:
                    pending.append((m, h, mix, key))
    chunks = [pending[i:i + batch] for i in range(0, len(pending), batch)]

    def record(chunk_keys: Sequence[str], chunk_payloads: Dict[str, Dict]) -> None:
        for key in chunk_keys:
            payloads[key] = chunk_payloads[key]
            if journal is not None:
                journal.record(key, chunk_payloads[key])

    if executor is not None:
        from repro.harness.executor import WorkItem

        items = [
            WorkItem(
                label=f"grid-batch[{i}]",
                kind="grid_batch",
                spec={"config": base, "cells": chunk, "fault_plan": fault_plan},
            )
            for i, chunk in enumerate(chunks)
        ]
        # The executor journals per item key; batch items carry no key
        # (their identity is not a cell's), so the sweep journals each
        # unpacked cell itself below.
        outs = executor.run(items)
        for item in items:
            payload = outs[item.result_key]
            record([k for (_m, _h, _mix, k) in item.spec["cells"]], payload["cells"])
        return
    from repro.harness.runner import BatchRunSpec, run_batch

    for chunk in chunks:
        specs = [
            BatchRunSpec(
                config=replace(base, mix=mix),
                heuristic=h,
                thresholds=ThresholdConfig(ipc_threshold=m),
                fault_plan=fault_plan,
            )
            for (m, h, mix, _key) in chunk
        ]
        results = run_batch(specs)
        chunk_payloads = {
            key: {
                "ipc": r.ipc,
                "switches": r.scheduler.get("switches", 0),
                "benign_probability": r.scheduler.get("benign_probability", 0.0),
            }
            for (_m, _h, _mix, key), r in zip(chunk, results)
        }
        record([k for (_m, _h, _mix, k) in chunk], chunk_payloads)


def threshold_type_grid(
    base: RunConfig,
    mixes: Sequence[str],
    thresholds: Sequence[float] = (1.0, 2.0, 3.0, 4.0, 5.0),
    heuristics: Sequence[str] = ("type1", "type2", "type3", "type3g", "type4"),
    journal: Optional[RunJournal] = None,
    retry: Optional[RetryPolicy] = None,
    executor: Optional["SupervisedExecutor"] = None,
    fault_plan: Optional[FaultPlan] = None,
    batch: Optional[int] = None,
) -> SweepResult:
    """Run the full grid. Cost = len(thresholds) x len(heuristics) x
    len(mixes) simulations of ``base.total_quanta()`` quanta each.

    With a ``journal``, every finished cell is durably appended and any
    already-journaled cell is served from the journal instead of re-running
    — a killed sweep resumes from the last completed cell (load the journal
    before calling). ``retry`` adds per-cell timeout/bounded-retry.

    With an ``executor``
    (:class:`~repro.harness.executor.SupervisedExecutor`), cells run in
    supervised child processes — concurrently, crash-contained, and with
    hard SIGKILL-enforced limits — and ``retry`` is ignored (the executor
    has its own restart budget). The aggregate is identical to the serial
    path for any worker count: every cell is seed-deterministic and the
    results are reassembled here in canonical grid order.

    ``fault_plan`` applies to every cell run (serial or supervised).
    Disk-only plans exercise the storage layer without changing any cell
    payload, so the aggregate stays identical to a fault-free sweep.

    With ``batch`` = N, cells run N at a time through the lockstep
    :class:`~repro.smt.batch.BatchEngine` (bit-identical to serial cells);
    under an ``executor``, each supervised worker then owns a whole batch
    instead of one cell. Journal keys remain per-cell either way, so any
    batch size resumes a journal written by any other. Per-cell ``retry``
    does not apply inside a batch (the executor's restart budget covers a
    whole batch attempt).
    """
    result = SweepResult(
        thresholds=list(thresholds), heuristics=list(heuristics), mixes=list(mixes)
    )
    payloads: Dict[str, Dict] = {}
    if batch:
        _run_batched_cells(
            base, thresholds, heuristics, mixes, batch,
            journal, executor, fault_plan, payloads,
        )
    elif executor is not None:
        from repro.harness.executor import WorkItem

        items = [
            WorkItem(
                label=f"grid[thr={m:g},{h},{mix}]",
                kind="grid_cell",
                spec={
                    "config": base, "threshold": m, "heuristic": h,
                    "mix": mix, "fault_plan": fault_plan,
                },
                key=_grid_cell_key(base, m, h, mix, fault_plan),
            )
            for m in thresholds
            for h in heuristics
            for mix in mixes
        ]
        payloads = executor.run(items, journal=journal)
    for m in thresholds:
        for h in heuristics:
            ipcs: List[float] = []
            total_switches = 0
            benign_weighted = 0.0
            for mix in mixes:
                key = _grid_cell_key(base, m, h, mix, fault_plan)
                payload = payloads.get(key)
                if payload is None and journal is not None:
                    payload = journal.get(key)
                if payload is None:
                    payload = _run_cell(base, m, h, mix, retry, fault_plan)
                    if journal is not None:
                        journal.record(key, payload)
                ipcs.append(payload["ipc"])
                result.per_mix_ipc[(m, h, mix)] = payload["ipc"]
                n = payload["switches"]
                total_switches += n
                benign_weighted += payload["benign_probability"] * n
            result.ipc[(m, h)] = sum(ipcs) / len(ipcs)
            result.switches[(m, h)] = total_switches
            result.benign[(m, h)] = (
                benign_weighted / total_switches if total_switches else 0.0
            )
    return result
