"""Experiment harness: runners, sweeps, sampling and report formatting for
regenerating every table and figure of the paper's evaluation (§5–§6),
hardened with a structured error taxonomy, per-run timeout/retry, a JSONL
run journal (single-writer locked) for crash-resilient checkpoint/resume
sweeps, and a process-isolated supervised executor that contains crashes
and enforces timeout/heartbeat limits with SIGKILL."""

from repro.harness.errors import (
    FAILURE_KINDS,
    ConfigError,
    HarnessError,
    HeartbeatStallError,
    JournalError,
    RunFailedError,
    RunTimeoutError,
    WorkerCrashError,
)
from repro.harness.executor import (
    ExecutorConfig,
    SupervisedExecutor,
    WorkItem,
    register_task_kind,
)
from repro.harness.journal import RunJournal
from repro.harness.resilience import RetryPolicy, guarded_run
from repro.harness.runner import RunConfig, RunResult, run_fixed, run_adts, run_mix_average
from repro.harness.sampling import SampledRunner, SampleSpec
from repro.harness.sweep import SweepResult, threshold_type_grid
from repro.harness.report import format_table, format_series, print_table
from repro.harness.experiments import (
    ExperimentDefaults,
    experiment_table1,
    experiment_fig7,
    experiment_fig8,
    experiment_headline,
    experiment_resilience,
    experiment_similarity,
    experiment_thread_scaling,
    experiment_detector_overhead,
)

__all__ = [
    "HarnessError",
    "ConfigError",
    "RunTimeoutError",
    "RunFailedError",
    "HeartbeatStallError",
    "WorkerCrashError",
    "JournalError",
    "FAILURE_KINDS",
    "RunJournal",
    "ExecutorConfig",
    "SupervisedExecutor",
    "WorkItem",
    "register_task_kind",
    "RetryPolicy",
    "guarded_run",
    "RunConfig",
    "RunResult",
    "run_fixed",
    "run_adts",
    "run_mix_average",
    "SampledRunner",
    "SampleSpec",
    "SweepResult",
    "threshold_type_grid",
    "format_table",
    "format_series",
    "print_table",
    "ExperimentDefaults",
    "experiment_table1",
    "experiment_fig7",
    "experiment_fig8",
    "experiment_headline",
    "experiment_resilience",
    "experiment_similarity",
    "experiment_thread_scaling",
    "experiment_detector_overhead",
]
