"""Single-run drivers: one (mix, scheduler) combination → one result."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Union

from repro import build_processor
from repro.core.adts import ADTSController, WatchdogConfig
from repro.core.thresholds import ThresholdConfig
from repro.faults import FaultInjector, FaultPlan
from repro.harness.errors import ConfigError
from repro.policies.registry import POLICY_NAMES
from repro.smt.config import SMTConfig


@dataclass(frozen=True)
class RunConfig:
    """Everything needed to reproduce one simulation run.

    ``warmup_quanta`` are simulated but excluded from the reported IPC —
    the stand-in for the paper's fast-forwarding into steady state.

    Fields are validated at construction; a bad value raises
    :class:`~repro.harness.errors.ConfigError` naming the field, instead of
    surfacing as an opaque failure deep inside ``build_processor``.
    """

    mix: Union[str, Sequence[str]] = "mix01"
    num_threads: int = 8
    seed: int = 0
    quantum_cycles: int = 2048
    quanta: int = 32
    warmup_quanta: int = 4
    policy: str = "icount"
    machine: Optional[SMTConfig] = None

    def __post_init__(self) -> None:
        if self.num_threads < 1:
            raise ConfigError("num_threads", self.num_threads, ">= 1")
        if self.quanta < 1:
            raise ConfigError("quanta", self.quanta, ">= 1")
        if self.warmup_quanta < 0:
            raise ConfigError("warmup_quanta", self.warmup_quanta, ">= 0")
        if self.quantum_cycles <= 0:
            raise ConfigError("quantum_cycles", self.quantum_cycles, "> 0")
        if self.policy not in POLICY_NAMES:
            raise ConfigError("policy", self.policy, f"one of {POLICY_NAMES}")

    def total_quanta(self) -> int:
        """Warmup plus measured quanta."""
        return self.quanta + self.warmup_quanta


@dataclass
class RunResult:
    """Outcome of one run (post-warmup window)."""

    config: RunConfig
    ipc: float
    committed: int
    cycles: int
    quantum_ipcs: List[float] = field(default_factory=list)
    scheduler: Dict = field(default_factory=dict)

    @property
    def mean_quantum_ipc(self) -> float:
        return sum(self.quantum_ipcs) / len(self.quantum_ipcs) if self.quantum_ipcs else 0.0


def _measure(proc, cfg: RunConfig, scheduler_summary: Dict) -> RunResult:
    proc.run_quanta(cfg.warmup_quanta)
    committed_base = proc.stats.committed
    cycles_base = proc.now
    proc.run_quanta(cfg.quanta)
    committed = proc.stats.committed - committed_base
    cycles = proc.now - cycles_base
    window = proc.stats.quantum_history[cfg.warmup_quanta :]
    return RunResult(
        config=cfg,
        ipc=committed / cycles if cycles else 0.0,
        committed=committed,
        cycles=cycles,
        quantum_ipcs=[q.ipc for q in window],
        scheduler=scheduler_summary,
    )


def _maybe_inject(hook, fault_plan: Optional[FaultPlan]):
    """Wrap ``hook`` in a FaultInjector when a plan with live faults is given.

    Returns ``(hook_to_install, injector_or_None)``.
    """
    if fault_plan is None or not fault_plan.any_enabled:
        return hook, None
    injector = FaultInjector(fault_plan, hook)
    return injector, injector


def run_fixed(cfg: RunConfig, fault_plan: Optional[FaultPlan] = None) -> RunResult:
    """Run under the fixed fetch policy named in ``cfg.policy``."""
    hook, injector = _maybe_inject(None, fault_plan)
    proc = build_processor(
        mix=cfg.mix,
        num_threads=cfg.num_threads,
        seed=cfg.seed,
        config=cfg.machine,
        policy=cfg.policy,
        hook=hook,
        quantum_cycles=cfg.quantum_cycles,
    )
    result = _measure(proc, cfg, {"mode": "fixed", "policy": cfg.policy})
    if injector is not None:
        result.scheduler.update(injector.summary())
    return result


def run_adts(
    cfg: RunConfig,
    heuristic: str = "type3",
    thresholds: Optional[ThresholdConfig] = None,
    instant_dt: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    watchdog: Optional[WatchdogConfig] = None,
) -> RunResult:
    """Run under ADTS with the given heuristic and thresholds.

    ``fault_plan`` (optional) interposes a seeded
    :class:`~repro.faults.FaultInjector` between the pipeline and the
    controller; ``watchdog`` overrides the controller's fallback knobs.
    """
    controller = ADTSController(
        heuristic=heuristic, thresholds=thresholds, instant_dt=instant_dt,
        watchdog=watchdog,
    )
    hook, injector = _maybe_inject(controller, fault_plan)
    proc = build_processor(
        mix=cfg.mix,
        num_threads=cfg.num_threads,
        seed=cfg.seed,
        config=cfg.machine,
        policy="icount",  # ADTS's initial/default policy (§4.3.3)
        hook=hook,
        quantum_cycles=cfg.quantum_cycles,
    )
    result = _measure(proc, cfg, {"mode": "adts", "heuristic": heuristic})
    result.scheduler.update(controller.summary())
    if injector is not None:
        result.scheduler.update(injector.summary())
    return result


def run_mix_average(
    mixes: Sequence[str],
    base: RunConfig,
    heuristic: Optional[str] = None,
    thresholds: Optional[ThresholdConfig] = None,
) -> Dict:
    """Average a configuration over several mixes (the paper reports
    'Average for All Combinations'). Fixed policy when ``heuristic`` is
    None, else ADTS."""
    if not mixes:
        raise ValueError("mixes must be a non-empty sequence of mix names")
    ipcs: List[float] = []
    switches = 0
    benign_events = 0
    judged_events = 0
    for mix in mixes:
        cfg = replace(base, mix=mix)
        if heuristic is None:
            result = run_fixed(cfg)
        else:
            result = run_adts(cfg, heuristic=heuristic, thresholds=thresholds)
            switches += result.scheduler.get("switches", 0)
            p = result.scheduler.get("benign_probability", 0.0)
            n = result.scheduler.get("switches", 0)
            benign_events += p * n
            judged_events += n
        ipcs.append(result.ipc)
    return {
        "mean_ipc": sum(ipcs) / len(ipcs),
        "per_mix_ipc": dict(zip(mixes, ipcs)),
        "switches": switches,
        "benign_probability": benign_events / judged_events if judged_events else 0.0,
    }
