"""Single-run drivers: one (mix, scheduler) combination → one result.

Beyond the plain drivers, runs can opt into three robustness features:

* ``progress`` — a callback fired at every quantum boundary with the index
  of the quantum that just finished; the supervised executor uses it as the
  worker heartbeat (a run that stops calling it is hung, not slow);
* ``checkpoint`` — a :class:`~repro.smt.checkpoint.CheckpointPlan`: the run
  snapshots its complete simulator state every N quanta, and a later call
  with the same plan *resumes* from the snapshot, bit-identical to an
  uninterrupted run (crash recovery at sub-cell granularity);
* ``invariants`` — installs an :class:`~repro.smt.invariants.InvariantChecker`
  outside the hook chain (``"raise"``, ``"watchdog"`` or ``"record"`` mode).

All three are exact-result-preserving: a run with any combination of them
enabled produces the same :class:`RunResult` as a bare run, because quanta
are stepped on exactly the same cycle boundaries either way.
"""

from __future__ import annotations

import logging
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro import build_processor
from repro.core.adts import ADTSController, WatchdogConfig
from repro.core.thresholds import ThresholdConfig
from repro.faults import FaultInjector, FaultPlan
from repro.harness.errors import ConfigError, StorageError
from repro.policies.registry import POLICY_NAMES
from repro.smt.checkpoint import (
    CheckpointError,
    CheckpointPlan,
    discard_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.smt.config import SMTConfig
from repro.smt.invariants import InvariantChecker
from repro.storage.faultfs import faultfs_session
from repro.workloads.tracecache import flush_trace_cache

ProgressFn = Callable[[int], None]

log = logging.getLogger("repro.runner")


@dataclass(frozen=True)
class RunConfig:
    """Everything needed to reproduce one simulation run.

    ``warmup_quanta`` are simulated but excluded from the reported IPC —
    the stand-in for the paper's fast-forwarding into steady state.

    Fields are validated at construction; a bad value raises
    :class:`~repro.harness.errors.ConfigError` naming the field, instead of
    surfacing as an opaque failure deep inside ``build_processor``.
    """

    mix: Union[str, Sequence[str]] = "mix01"
    num_threads: int = 8
    seed: int = 0
    quantum_cycles: int = 2048
    quanta: int = 32
    warmup_quanta: int = 4
    policy: str = "icount"
    machine: Optional[SMTConfig] = None

    def __post_init__(self) -> None:
        if self.num_threads < 1:
            raise ConfigError("num_threads", self.num_threads, ">= 1")
        if self.quanta < 1:
            raise ConfigError("quanta", self.quanta, ">= 1")
        if self.warmup_quanta < 0:
            raise ConfigError("warmup_quanta", self.warmup_quanta, ">= 0")
        if self.quantum_cycles <= 0:
            raise ConfigError("quantum_cycles", self.quantum_cycles, "> 0")
        if self.policy not in POLICY_NAMES:
            raise ConfigError("policy", self.policy, f"one of {POLICY_NAMES}")

    def total_quanta(self) -> int:
        """Warmup plus measured quanta."""
        return self.quanta + self.warmup_quanta


@dataclass
class RunResult:
    """Outcome of one run (post-warmup window)."""

    config: RunConfig
    ipc: float
    committed: int
    cycles: int
    quantum_ipcs: List[float] = field(default_factory=list)
    scheduler: Dict = field(default_factory=dict)

    @property
    def mean_quantum_ipc(self) -> float:
        return sum(self.quantum_ipcs) / len(self.quantum_ipcs) if self.quantum_ipcs else 0.0


def _run_key(cfg: RunConfig, mode: str, scheduler: str, ipc_threshold: Optional[float]) -> str:
    """Canonical identity of one run — the guard against resuming a cell
    from some other run's checkpoint."""
    from repro.harness.journal import RunJournal

    return RunJournal.cell_key(
        kind="run",
        mode=mode,
        scheduler=scheduler,
        ipc_threshold=ipc_threshold,
        mix=cfg.mix,
        seed=cfg.seed,
        num_threads=cfg.num_threads,
        quantum_cycles=cfg.quantum_cycles,
        quanta=cfg.quanta,
        warmup_quanta=cfg.warmup_quanta,
    )


def _measure(
    proc,
    cfg: RunConfig,
    scheduler_summary: Dict,
    progress: Optional[ProgressFn] = None,
    checkpoint: Optional[CheckpointPlan] = None,
    controller=None,
    injector=None,
    run_key: Optional[str] = None,
) -> RunResult:
    """Advance ``proc`` to ``cfg.total_quanta()`` quanta and window the stats.

    The result is derived purely from the per-quantum history, so it is
    identical whether the run went straight through, was stepped quantum by
    quantum for heartbeats/checkpoints, or was restored mid-way from a
    snapshot (``proc`` may arrive here with quanta already on the clock).
    """
    total = cfg.total_quanta()
    if progress is None and checkpoint is None:
        proc.run_quanta(total - proc.quantum_index)
    else:
        while proc.quantum_index < total:
            proc.run_quanta(1)
            done = proc.quantum_index
            if progress is not None:
                progress(done)
            if checkpoint is not None and done < total and checkpoint.due(done):
                try:
                    save_checkpoint(
                        checkpoint.path, proc, controller, injector,
                        meta={"run_key": run_key, "fingerprint": proc.fingerprint()},
                    )
                except StorageError as exc:
                    # A checkpoint is an optimization: losing one costs a
                    # longer retry, aborting would cost the run. A seeded
                    # disk fault would also recur identically on every
                    # supervised retry, so the run must outlive it.
                    log.warning(
                        "checkpoint write failed at quantum %d (%s); "
                        "continuing without a snapshot", done, exc,
                    )
        if checkpoint is not None and not checkpoint.keep_on_success:
            discard_checkpoint(checkpoint.path)
    window = proc.stats.quantum_history[cfg.warmup_quanta : total]
    committed = sum(q.committed for q in window)
    cycles = sum(q.cycles for q in window)
    return RunResult(
        config=cfg,
        ipc=committed / cycles if cycles else 0.0,
        committed=committed,
        cycles=cycles,
        quantum_ipcs=[q.ipc for q in window],
        scheduler=scheduler_summary,
    )


def _maybe_inject(hook, fault_plan: Optional[FaultPlan]):
    """Wrap ``hook`` in a FaultInjector when a plan with live faults is given.

    Returns ``(hook_to_install, injector_or_None)``.
    """
    if fault_plan is None or not fault_plan.any_scheduler_enabled:
        # Disk-only plans don't touch the hook chain: they are injected at
        # the storage layer by _maybe_faultfs and never perturb results.
        return hook, None
    injector = FaultInjector(fault_plan, hook)
    return injector, injector


@contextmanager
def _maybe_faultfs(fault_plan: Optional[FaultPlan]):
    """Scope the plan's disk-fault family around a run's storage I/O.

    No-op (an active outer injector stays active) when the plan carries no
    disk faults; otherwise a fresh seeded
    :class:`~repro.storage.faultfs.FaultFS` is installed for the run so
    every checkpoint/journal/trace-cache write and read inside it goes
    through the injector.
    """
    disk = fault_plan.disk_plan() if fault_plan is not None else None
    if disk is None:
        yield None
        return
    with faultfs_session(disk) as ffs:
        yield ffs


def _maybe_check(hook, invariants: Optional[str]):
    """Wrap ``hook`` in an InvariantChecker when a mode is requested.

    The checker goes *outside* any injector so it always judges the true
    machine state, never injected telemetry (that is the watchdog's job).
    Returns ``(hook_to_install, checker_or_None)``.
    """
    if invariants is None:
        return hook, None
    checker = InvariantChecker(hook, mode=invariants)
    return checker, checker


def _try_resume(checkpoint: Optional[CheckpointPlan], run_key: str):
    """Load the plan's snapshot if one exists; None means start fresh.

    A snapshot that fails validation is not fatal: ``load_checkpoint`` has
    already quarantined the damaged file, and starting from cycle zero is
    always correct (just slower) — raising here would burn a supervised
    retry on every attempt against the same bad bytes.
    """
    if checkpoint is None or not Path(checkpoint.path).exists():
        return None
    try:
        return load_checkpoint(checkpoint.path, expect_meta={"run_key": run_key})
    except CheckpointError as exc:
        log.warning("ignoring unusable checkpoint (%s); starting fresh", exc)
        return None


def run_fixed(
    cfg: RunConfig,
    fault_plan: Optional[FaultPlan] = None,
    progress: Optional[ProgressFn] = None,
    checkpoint: Optional[CheckpointPlan] = None,
    invariants: Optional[str] = None,
) -> RunResult:
    """Run under the fixed fetch policy named in ``cfg.policy``."""
    with _maybe_faultfs(fault_plan) as ffs:
        run_key = _run_key(cfg, "fixed", cfg.policy, None)
        snap = _try_resume(checkpoint, run_key)
        if snap is not None:
            proc, injector = snap.processor, snap.injector
            if injector is not None and fault_plan is not None:
                # An explicit plan overrides the snapshotted one. Zero-rate
                # families draw nothing from the RNG, so a supervised retry
                # can strip process-killing faults without desyncing the
                # stream.
                injector.plan = fault_plan
        else:
            hook, injector = _maybe_inject(None, fault_plan)
            hook, _ = _maybe_check(hook, invariants)
            proc = build_processor(
                mix=cfg.mix,
                num_threads=cfg.num_threads,
                seed=cfg.seed,
                config=cfg.machine,
                policy=cfg.policy,
                hook=hook,
                quantum_cycles=cfg.quantum_cycles,
            )
        checker = proc.hook if isinstance(proc.hook, InvariantChecker) else None
        result = _measure(
            proc, cfg, {"mode": "fixed", "policy": cfg.policy},
            progress=progress, checkpoint=checkpoint,
            injector=injector, run_key=run_key,
        )
        if injector is not None:
            result.scheduler.update(injector.summary())
        if checker is not None:
            result.scheduler.update(checker.summary())
        flush_trace_cache()
        if ffs is not None:
            result.scheduler.update(ffs.summary())
        return result


def run_adts(
    cfg: RunConfig,
    heuristic: str = "type3",
    thresholds: Optional[ThresholdConfig] = None,
    instant_dt: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    watchdog: Optional[WatchdogConfig] = None,
    progress: Optional[ProgressFn] = None,
    checkpoint: Optional[CheckpointPlan] = None,
    invariants: Optional[str] = None,
) -> RunResult:
    """Run under ADTS with the given heuristic and thresholds.

    ``fault_plan`` (optional) interposes a seeded
    :class:`~repro.faults.FaultInjector` between the pipeline and the
    controller; ``watchdog`` overrides the controller's fallback knobs.
    With a ``checkpoint`` plan whose snapshot file exists, the run resumes
    from it and the heuristic / threshold / fault arguments are taken from
    the restored state; a snapshot that is damaged or carries a different
    run identity is quarantined/ignored and the run starts fresh (always
    correct, merely slower).
    """
    th = thresholds or ThresholdConfig()
    with _maybe_faultfs(fault_plan) as ffs:
        run_key = _run_key(cfg, "adts", heuristic, th.ipc_threshold)
        snap = _try_resume(checkpoint, run_key)
        if snap is not None:
            proc, controller, injector = snap.processor, snap.controller, snap.injector
            if injector is not None and fault_plan is not None:
                injector.plan = fault_plan  # see run_fixed: retry fault stripping
        else:
            controller = ADTSController(
                heuristic=heuristic, thresholds=th, instant_dt=instant_dt,
                watchdog=watchdog,
            )
            hook, injector = _maybe_inject(controller, fault_plan)
            hook, _ = _maybe_check(hook, invariants)
            proc = build_processor(
                mix=cfg.mix,
                num_threads=cfg.num_threads,
                seed=cfg.seed,
                config=cfg.machine,
                policy="icount",  # ADTS's initial/default policy (§4.3.3)
                hook=hook,
                quantum_cycles=cfg.quantum_cycles,
            )
        checker = proc.hook if isinstance(proc.hook, InvariantChecker) else None
        result = _measure(
            proc, cfg, {"mode": "adts", "heuristic": heuristic},
            progress=progress, checkpoint=checkpoint,
            controller=controller, injector=injector, run_key=run_key,
        )
        result.scheduler.update(controller.summary())
        if injector is not None:
            result.scheduler.update(injector.summary())
        if checker is not None:
            result.scheduler.update(checker.summary())
        flush_trace_cache()
        if ffs is not None:
            result.scheduler.update(ffs.summary())
        return result


@dataclass(frozen=True)
class BatchRunSpec:
    """One cell of a batched run: a :class:`RunConfig` plus the scheduler
    selection ``run_adts``/``run_fixed`` would take as arguments."""

    config: RunConfig
    mode: str = "adts"
    heuristic: str = "type3"
    thresholds: Optional[ThresholdConfig] = None
    fault_plan: Optional[FaultPlan] = None


def run_batch(
    specs: Sequence[BatchRunSpec],
    progress: Optional[ProgressFn] = None,
) -> List[RunResult]:
    """Run many cells through one lockstep :class:`~repro.smt.batch.BatchEngine`
    pass, sharing trace streams and (where trajectories coincide) whole
    machine steps across cells.

    Each result is bit-identical to the corresponding sequential
    ``run_adts``/``run_fixed`` call: the engine forks shared machines the
    moment cells diverge, so sharing is a pure performance transform.
    Cells whose plan carries scheduler faults run solo (their own injector,
    no cross-cell bleed) but still share trace streams. Disk-fault
    families are scoped once around the whole pass — they never change
    payloads, so the wider scope is observationally identical to the
    sequential per-run session.

    ``progress`` is called after every lockstep round (the batch analogue
    of the per-quantum heartbeat).
    """
    from repro.smt.batch import BatchCell, BatchEngine

    cells = []
    for spec in specs:
        cfg = spec.config
        cells.append(
            BatchCell(
                mix=cfg.mix,
                num_threads=cfg.num_threads,
                seed=cfg.seed,
                quantum_cycles=cfg.quantum_cycles,
                quanta=cfg.quanta,
                warmup_quanta=cfg.warmup_quanta,
                mode=spec.mode,
                policy=cfg.policy,
                heuristic=spec.heuristic,
                thresholds=spec.thresholds,
                machine=cfg.machine,
                fault_plan=spec.fault_plan,
            )
        )
    disk_plan = next(
        (
            s.fault_plan for s in specs
            if s.fault_plan is not None and s.fault_plan.disk_plan() is not None
        ),
        None,
    )
    with _maybe_faultfs(disk_plan):
        results = BatchEngine(cells).run(progress=progress)
        flush_trace_cache()
    return [
        RunResult(
            config=spec.config,
            ipc=r.ipc,
            committed=r.committed,
            cycles=r.cycles,
            quantum_ipcs=r.quantum_ipcs,
            scheduler=r.scheduler,
        )
        for spec, r in zip(specs, results)
    ]


def run_mix_average(
    mixes: Sequence[str],
    base: RunConfig,
    heuristic: Optional[str] = None,
    thresholds: Optional[ThresholdConfig] = None,
) -> Dict:
    """Average a configuration over several mixes (the paper reports
    'Average for All Combinations'). Fixed policy when ``heuristic`` is
    None, else ADTS."""
    if not mixes:
        raise ValueError("mixes must be a non-empty sequence of mix names")
    ipcs: List[float] = []
    switches = 0
    benign_events = 0
    judged_events = 0
    for mix in mixes:
        cfg = replace(base, mix=mix)
        if heuristic is None:
            result = run_fixed(cfg)
        else:
            result = run_adts(cfg, heuristic=heuristic, thresholds=thresholds)
            switches += result.scheduler.get("switches", 0)
            p = result.scheduler.get("benign_probability", 0.0)
            n = result.scheduler.get("switches", 0)
            benign_events += p * n
            judged_events += n
        ipcs.append(result.ipc)
    return {
        "mean_ipc": sum(ipcs) / len(ipcs),
        "per_mix_ipc": dict(zip(mixes, ipcs)),
        "switches": switches,
        "benign_probability": benign_events / judged_events if judged_events else 0.0,
    }
