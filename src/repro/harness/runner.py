"""Single-run drivers: one (mix, scheduler) combination → one result."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Union

from repro import build_processor
from repro.core.adts import ADTSController
from repro.core.thresholds import ThresholdConfig
from repro.smt.config import SMTConfig


@dataclass(frozen=True)
class RunConfig:
    """Everything needed to reproduce one simulation run.

    ``warmup_quanta`` are simulated but excluded from the reported IPC —
    the stand-in for the paper's fast-forwarding into steady state.
    """

    mix: Union[str, Sequence[str]] = "mix01"
    num_threads: int = 8
    seed: int = 0
    quantum_cycles: int = 2048
    quanta: int = 32
    warmup_quanta: int = 4
    policy: str = "icount"
    machine: Optional[SMTConfig] = None

    def total_quanta(self) -> int:
        """Warmup plus measured quanta."""
        return self.quanta + self.warmup_quanta


@dataclass
class RunResult:
    """Outcome of one run (post-warmup window)."""

    config: RunConfig
    ipc: float
    committed: int
    cycles: int
    quantum_ipcs: List[float] = field(default_factory=list)
    scheduler: Dict = field(default_factory=dict)

    @property
    def mean_quantum_ipc(self) -> float:
        return sum(self.quantum_ipcs) / len(self.quantum_ipcs) if self.quantum_ipcs else 0.0


def _measure(proc, cfg: RunConfig, scheduler_summary: Dict) -> RunResult:
    proc.run_quanta(cfg.warmup_quanta)
    committed_base = proc.stats.committed
    cycles_base = proc.now
    proc.run_quanta(cfg.quanta)
    committed = proc.stats.committed - committed_base
    cycles = proc.now - cycles_base
    window = proc.stats.quantum_history[cfg.warmup_quanta :]
    return RunResult(
        config=cfg,
        ipc=committed / cycles if cycles else 0.0,
        committed=committed,
        cycles=cycles,
        quantum_ipcs=[q.ipc for q in window],
        scheduler=scheduler_summary,
    )


def run_fixed(cfg: RunConfig) -> RunResult:
    """Run under the fixed fetch policy named in ``cfg.policy``."""
    proc = build_processor(
        mix=cfg.mix,
        num_threads=cfg.num_threads,
        seed=cfg.seed,
        config=cfg.machine,
        policy=cfg.policy,
        quantum_cycles=cfg.quantum_cycles,
    )
    return _measure(proc, cfg, {"mode": "fixed", "policy": cfg.policy})


def run_adts(
    cfg: RunConfig,
    heuristic: str = "type3",
    thresholds: Optional[ThresholdConfig] = None,
    instant_dt: bool = False,
) -> RunResult:
    """Run under ADTS with the given heuristic and thresholds."""
    controller = ADTSController(
        heuristic=heuristic, thresholds=thresholds, instant_dt=instant_dt
    )
    proc = build_processor(
        mix=cfg.mix,
        num_threads=cfg.num_threads,
        seed=cfg.seed,
        config=cfg.machine,
        policy="icount",  # ADTS's initial/default policy (§4.3.3)
        hook=controller,
        quantum_cycles=cfg.quantum_cycles,
    )
    result = _measure(proc, cfg, {"mode": "adts", "heuristic": heuristic})
    result.scheduler.update(controller.summary())
    return result


def run_mix_average(
    mixes: Sequence[str],
    base: RunConfig,
    heuristic: Optional[str] = None,
    thresholds: Optional[ThresholdConfig] = None,
) -> Dict:
    """Average a configuration over several mixes (the paper reports
    'Average for All Combinations'). Fixed policy when ``heuristic`` is
    None, else ADTS."""
    ipcs: List[float] = []
    switches = 0
    benign_events = 0
    judged_events = 0
    for mix in mixes:
        cfg = replace(base, mix=mix)
        if heuristic is None:
            result = run_fixed(cfg)
        else:
            result = run_adts(cfg, heuristic=heuristic, thresholds=thresholds)
            switches += result.scheduler.get("switches", 0)
            p = result.scheduler.get("benign_probability", 0.0)
            n = result.scheduler.get("switches", 0)
            benign_events += p * n
            judged_events += n
        ipcs.append(result.ipc)
    return {
        "mean_ipc": sum(ipcs) / len(ipcs) if ipcs else 0.0,
        "per_mix_ipc": dict(zip(mixes, ipcs)),
        "switches": switches,
        "benign_probability": benign_events / judged_events if judged_events else 0.0,
    }
