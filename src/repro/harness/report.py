"""Plain-text report formatting: the harness prints the same rows/series
the paper's figures plot, as aligned tables."""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

Number = Union[int, float]


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
) -> str:
    """Aligned monospace table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence[Number]) -> str:
    """One figure series as `name: x=y` pairs."""
    pairs = "  ".join(f"{x}={_fmt(y)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def print_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> None:
    """Print an aligned table to stdout."""
    print(format_table(headers, rows, title))


def grid_to_rows(
    grid: Dict,
    row_keys: Sequence,
    col_keys: Sequence,
    row_label: str,
) -> List[List]:
    """Flatten a {(row, col): value} dict into table rows."""
    rows = []
    for r in row_keys:
        rows.append([r] + [grid.get((r, c), "") for c in col_keys])
    return rows
