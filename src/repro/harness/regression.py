"""Golden-result regression checking.

The benchmark suite writes every experiment's series to ``results/*.json``.
This module turns those files into a regression harness: snapshot a known-
good state (`save_goldens`), then compare future runs against it with
per-metric relative tolerances (`compare_to_goldens`) — the standard
workflow for keeping a simulator's behaviour pinned while refactoring.

Comparison semantics: numbers compare within tolerance, strings and bools
exactly; containers recurse; missing/extra keys are reported. Integers that
are *counts* (switches, fills) use the same relative tolerance with an
absolute floor so small counts don't flap.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

Number = Union[int, float]


@dataclass(frozen=True)
class Mismatch:
    """One divergence from the golden state."""

    file: str
    path: str
    expected: object
    actual: object
    kind: str  # "value" | "missing" | "extra" | "type"

    def __str__(self) -> str:
        return f"{self.file}:{self.path} [{self.kind}] expected {self.expected!r}, got {self.actual!r}"


@dataclass
class RegressionReport:
    """Outcome of one goldens comparison."""

    mismatches: List[Mismatch] = field(default_factory=list)
    files_compared: int = 0

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.ok:
            return f"OK: {self.files_compared} result files match the goldens"
        return (f"{len(self.mismatches)} mismatches across "
                f"{len({m.file for m in self.mismatches})} files; first: {self.mismatches[0]}")


def _compare(
    expected,
    actual,
    rel_tol: float,
    abs_floor: float,
    file: str,
    path: str,
    out: List[Mismatch],
) -> None:
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in expected:
            if key not in actual:
                out.append(Mismatch(file, f"{path}.{key}", expected[key], None, "missing"))
            else:
                _compare(expected[key], actual[key], rel_tol, abs_floor, file, f"{path}.{key}", out)
        for key in actual:
            if key not in expected:
                out.append(Mismatch(file, f"{path}.{key}", None, actual[key], "extra"))
        return
    if isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            out.append(Mismatch(file, f"{path}.len", len(expected), len(actual), "value"))
            return
        for i, (e, a) in enumerate(zip(expected, actual)):
            _compare(e, a, rel_tol, abs_floor, file, f"{path}[{i}]", out)
        return
    if isinstance(expected, bool) or isinstance(actual, bool):
        if expected != actual:
            out.append(Mismatch(file, path, expected, actual, "value"))
        return
    if isinstance(expected, (int, float)) and isinstance(actual, (int, float)):
        scale = max(abs(expected), abs(actual), abs_floor)
        if abs(expected - actual) > rel_tol * scale:
            out.append(Mismatch(file, path, expected, actual, "value"))
        return
    if type(expected) is not type(actual):
        out.append(Mismatch(file, path, expected, actual, "type"))
        return
    if expected != actual:
        out.append(Mismatch(file, path, expected, actual, "value"))


def save_goldens(
    results_dir: Union[str, pathlib.Path],
    goldens_dir: Union[str, pathlib.Path],
) -> int:
    """Snapshot every ``results/*.json`` into the goldens directory.

    Returns the number of files captured.
    """
    results = pathlib.Path(results_dir)
    goldens = pathlib.Path(goldens_dir)
    goldens.mkdir(parents=True, exist_ok=True)
    count = 0
    for src in sorted(results.glob("*.json")):
        (goldens / src.name).write_text(src.read_text())
        count += 1
    return count


def verify_campaign(path: Union[str, pathlib.Path]) -> RegressionReport:
    """Gate a chaos-day campaign report: the drain contract as mismatches.

    Loads a ``chaos-campaign`` artifact (checksum verified by the storage
    layer — a tampered or torn report fails here, not silently) and turns
    every violated clause of the contract into a :class:`Mismatch`, so CI
    fails the build with the same machinery (and the same readable output)
    the goldens gate uses. Clauses checked: campaign exit code 0, contract
    ``ok``, zero unaccounted requests, zero reasonless refusals, and an
    fsck pass that quarantined nothing. Campaigns that ran the integrity
    layer (a ``verification`` block is present) additionally must show a
    passing audit: zero uncaught corruption events and zero surviving
    divergent entries.
    """
    from repro.storage import ArtifactError, load_json_artifact

    path = pathlib.Path(path)
    report = RegressionReport()
    name = path.name
    try:
        _, doc = load_json_artifact(path, expect_format="chaos-campaign")
    except (OSError, ArtifactError, ValueError) as exc:
        report.mismatches.append(
            Mismatch(name, "<file>", "loadable chaos-campaign artifact",
                     f"{type(exc).__name__}: {exc}", "missing")
        )
        return report
    report.files_compared = 1
    contract = doc.get("contract", {})
    checks = (
        ("$.exit_code", 0, doc.get("exit_code")),
        ("$.contract.ok", True, contract.get("ok")),
        ("$.contract.unaccounted", 0, contract.get("unaccounted")),
        ("$.contract.refusals_without_reason", 0,
         contract.get("refusals_without_reason")),
        ("$.fsck.exit_code", 0, doc.get("fsck", {}).get("exit_code")),
    )
    for where, expected, actual in checks:
        if actual != expected:
            report.mismatches.append(
                Mismatch(name, where, expected, actual, "value")
            )
    audit = doc.get("verification")
    if audit is not None:
        audit_checks = (
            ("$.verification.ok", True, audit.get("ok")),
            ("$.verification.uncaught", 0, len(audit.get("uncaught", []))),
            ("$.verification.live_divergent", 0, audit.get("live_divergent")),
        )
        for where, expected, actual in audit_checks:
            if actual != expected:
                report.mismatches.append(
                    Mismatch(name, where, expected, actual, "value")
                )
    answered = contract.get("answered")
    submitted = contract.get("submitted")
    if answered != submitted:
        report.mismatches.append(
            Mismatch(name, "$.contract.answered", submitted, answered, "value")
        )
    return report


def verify_profile(
    path: Union[str, pathlib.Path],
    baseline_path: Union[str, pathlib.Path],
    rel_tol: Optional[float] = None,
    abs_floor: Optional[float] = None,
    ignore: tuple = (),
    fail_on_warn: bool = False,
) -> RegressionReport:
    """Gate a behaviour profile against a baseline profile: drift as
    mismatches.

    Loads both ``behaviour-profile`` artifacts (checksum verified by the
    storage layer), computes structured drift with the seeded-noise-aware
    defaults from :mod:`repro.behavior.drift`, and turns every drifting
    metric into a :class:`Mismatch` so CI fails the build with the same
    machinery the goldens gate uses. ``warn`` metrics only fail when
    ``fail_on_warn`` is set; metrics *missing* from the current profile
    fail (the behaviour stopped being measured); *extra* metrics never
    fail (future PRs may add telemetry without breaking the gate).
    """
    from repro.behavior import DriftConfig, compute_drift, load_profile
    from repro.storage import ArtifactError

    report = RegressionReport()
    name = pathlib.Path(path).name
    sides = {}
    for role, p in (("baseline", baseline_path), ("current", path)):
        try:
            sides[role] = load_profile(p)
        except (OSError, ArtifactError, ValueError) as exc:
            report.mismatches.append(
                Mismatch(pathlib.Path(p).name, "<file>",
                         f"loadable behaviour-profile ({role})",
                         f"{type(exc).__name__}: {exc}", "missing")
            )
    if report.mismatches:
        return report
    kwargs = {"ignore": tuple(ignore)}
    if rel_tol is not None:
        kwargs["rel_tol"] = rel_tol
    if abs_floor is not None:
        kwargs["abs_floor"] = abs_floor
    drift = compute_drift(sides["baseline"], sides["current"], DriftConfig(**kwargs))
    report.files_compared = 1
    for metric in drift.metrics:
        bad = metric.verdict == "drift" or (
            fail_on_warn and metric.verdict == "warn"
        )
        if bad:
            report.mismatches.append(
                Mismatch(name, f"$.metrics.{metric.metric}",
                         metric.baseline, metric.current, "value")
            )
    for missing in drift.missing:
        report.mismatches.append(
            Mismatch(name, f"$.metrics.{missing}",
                     sides["baseline"].metrics[missing], None, "missing")
        )
    return report


def compare_to_goldens(
    results_dir: Union[str, pathlib.Path],
    goldens_dir: Union[str, pathlib.Path],
    rel_tol: float = 0.05,
    abs_floor: float = 1.0,
    only: Optional[List[str]] = None,
) -> RegressionReport:
    """Compare current results against the goldens snapshot.

    Args:
        results_dir: directory of freshly produced ``*.json`` results.
        goldens_dir: directory produced by :func:`save_goldens`.
        rel_tol: relative tolerance for numeric values (default 5 %).
        abs_floor: scale floor so near-zero values don't demand absurd
            precision.
        only: optional list of file names to restrict the comparison.
    """
    results = pathlib.Path(results_dir)
    goldens = pathlib.Path(goldens_dir)
    report = RegressionReport()
    for golden_file in sorted(goldens.glob("*.json")):
        if only is not None and golden_file.name not in only:
            continue
        current = results / golden_file.name
        if not current.exists():
            report.mismatches.append(
                Mismatch(golden_file.name, "<file>", "present", "absent", "missing")
            )
            continue
        expected = json.loads(golden_file.read_text())
        actual = json.loads(current.read_text())
        report.files_compared += 1
        _compare(expected, actual, rel_tol, abs_floor, golden_file.name, "$", report.mismatches)
    return report
