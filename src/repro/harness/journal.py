"""JSONL run journal: checkpoint/resume for long sweeps.

Each completed sweep cell is appended as one JSON line
``{"key": <canonical-key-string>, "payload": {...}}`` and flushed+fsynced
immediately, so a killed sweep loses at most the cell that was in flight.
On resume the journal is loaded and every journaled cell is served from the
stored payload instead of being re-simulated; because all simulations are
seed-deterministic, the resumed aggregate is identical to an uninterrupted
run.

A process killed mid-write can leave a truncated final line; that tail is
silently discarded (its cell simply re-runs). An undecodable line *before*
the tail means real corruption and raises
:class:`~repro.harness.errors.JournalError` rather than quietly dropping
completed work.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

from repro.harness.errors import JournalError


class RunJournal:
    """Append-only JSONL journal of completed run cells."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._entries: Dict[str, dict] = {}

    @staticmethod
    def cell_key(**fields: object) -> str:
        """Canonical, order-independent key string for one cell."""
        return json.dumps(fields, sort_keys=True, default=str)

    # -- persistence --------------------------------------------------------
    def load(self) -> int:
        """Load journaled cells from disk; returns the number loaded.

        Tolerates a truncated last line (mid-write kill); raises
        :class:`JournalError` on corruption anywhere else.
        """
        self._entries.clear()
        if not self.path.exists():
            return 0
        lines = self.path.read_text(encoding="utf-8").splitlines()
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                key, payload = entry["key"], entry["payload"]
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                if i == len(lines) - 1:
                    break  # truncated tail from a killed run: re-run that cell
                raise JournalError(
                    f"{self.path}: undecodable journal line {i + 1}: {line[:80]!r}"
                ) from exc
            self._entries[key] = payload
        return len(self._entries)

    def record(self, key: str, payload: dict) -> None:
        """Durably append one completed cell."""
        self._entries[key] = payload
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps({"key": key, "payload": payload}, default=str)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def clear(self) -> None:
        """Forget all entries and remove the on-disk file (fresh sweep)."""
        self._entries.clear()
        if self.path.exists():
            self.path.unlink()

    # -- lookup -------------------------------------------------------------
    def has(self, key: str) -> bool:
        """True when ``key``'s cell has a journaled payload."""
        return key in self._entries

    def get(self, key: str) -> Optional[dict]:
        """The journaled payload for ``key``, or None if absent."""
        return self._entries.get(key)

    def __len__(self) -> int:
        return len(self._entries)
