"""JSONL run journal: checkpoint/resume for long sweeps.

Each completed sweep cell is appended as one JSON line
``{"key": <canonical-key-string>, "payload": {...}, "crc": <crc32>}`` in a
single durable write (:func:`repro.storage.atomic.append_line`), so a
killed sweep loses at most the cell that was in flight and an ENOSPC
mid-record is healed by truncation instead of leaving a torn tail. On
resume the journal is loaded and every journaled cell is served from the
stored payload instead of being re-simulated; because all simulations are
seed-deterministic, the resumed aggregate is identical to an uninterrupted
run.

The per-line ``crc`` covers the canonical JSON of ``[key, payload]``, so
bitrot inside a record is detected at load time rather than silently
resumed from. Lines without a ``crc`` (written before this scheme) still
load; ``repro fsck`` reports such journals as *migratable* and can rewrite
them checksummed.

A process killed mid-write can leave a truncated final line; that tail is
silently discarded (its cell simply re-runs). An undecodable line *before*
the tail means real corruption: strict :meth:`RunJournal.load` raises
:class:`~repro.harness.errors.JournalError` rather than quietly dropping
completed work, while :meth:`RunJournal.recover` (used by sweep resume and
the service) salvages every intact record, quarantines the damaged
original to ``*.corrupt``, and rewrites the salvaged lines so the run
continues minus only the broken cells.

**Single-writer locking.** Two sweeps (or two supervisors) appending to the
same journal would interleave partial lines and corrupt both runs. The
first ``record()`` therefore takes an advisory ``fcntl.flock`` on a sidecar
``<journal>.lock`` file (stamped with the holder's PID) and holds it for
the journal object's lifetime; a second writer fails fast with a
:class:`JournalError` naming the live holder instead of corrupting the
file. The lock dies with the process (flock semantics), so a SIGKILLed
sweep never leaves a stale lock behind.

**Stale-lock breaking.** A flock can outlive its *stamped* holder: the
lock fd is inherited across fork, so when a supervisor that took the lock
is SIGKILLed while a forked worker still holds the inherited descriptor,
every later writer sees a lock "held" by a PID that no longer exists and
wedges until someone deletes the sidecar by hand. ``acquire_lock`` now
detects that case — flock conflict *and* stamped holder PID dead — breaks
the stale lock by unlinking the sidecar (a fresh inode carries no old
flock), and retries once. A conflict whose stamped holder is alive still
fails fast exactly as before.
"""

from __future__ import annotations

import json
import logging
import os
import zlib
from pathlib import Path
from typing import Dict, Optional, Union

from repro.harness.errors import JournalError, StorageError
from repro.storage.atomic import append_line, atomic_write_bytes, quarantine

try:
    import fcntl
except ImportError:  # non-POSIX: locking degrades to no-op
    fcntl = None

log = logging.getLogger("repro.journal")


def _entry_crc(key: str, payload: dict) -> int:
    """Per-line CRC32 over the canonical JSON of ``[key, payload]``.

    ``payload`` must already be JSON-normalized (``record`` round-trips it)
    so the load-side recompute over the parsed line matches exactly.
    """
    blob = json.dumps([key, payload], sort_keys=True, default=str)
    return zlib.crc32(blob.encode("utf-8"))


def _decode_line(line: str) -> tuple:
    """Decode + checksum-verify one journal line; returns ``(key, payload)``.

    Raises ``ValueError`` on any damage. Lines without a ``"crc"`` field are
    legacy (pre-checksum) and accepted as-is — fsck reports them migratable.
    """
    entry = json.loads(line)
    key, payload = entry["key"], entry["payload"]
    if "crc" in entry and entry["crc"] != _entry_crc(key, payload):
        raise ValueError(f"journal line checksum mismatch (key {key[:40]!r})")
    return key, payload


def scan_journal_lines(lines: list) -> dict:
    """Classify every line of a JSONL journal (shared with ``repro fsck``).

    Returns ``{"entries": {key: payload}, "good_lines": [verbatim valid
    lines], "bad_lines": [1-based indices], "torn_tail": bool,
    "missing_crc": count}``. A sole undecodable *final* line is a torn
    tail (mid-write kill), not corruption.
    """
    entries: Dict[str, dict] = {}
    good_lines = []
    bad_lines = []
    torn_tail = False
    missing_crc = 0
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            key, payload = _decode_line(line)
        except (ValueError, KeyError, TypeError):
            if i == len(lines) - 1:
                torn_tail = True
            else:
                bad_lines.append(i + 1)
            continue
        if '"crc"' not in line:
            missing_crc += 1
        entries[key] = payload
        good_lines.append(line)
    return {
        "entries": entries,
        "good_lines": good_lines,
        "bad_lines": bad_lines,
        "torn_tail": torn_tail,
        "missing_crc": missing_crc,
    }

def _read_lines(path: Path) -> list:
    """Read a journal's lines, surviving non-UTF-8 bitrot.

    Undecodable bytes become U+FFFD replacement characters, which poison
    that line's JSON/CRC so it flows into the normal damaged-line handling
    (torn tail tolerated, interior corruption raised or salvaged) instead
    of crashing the whole load with ``UnicodeDecodeError``.
    """
    return path.read_bytes().decode("utf-8", errors="replace").splitlines()


#: Process-wide lock table: resolved lock path -> [file handle, refcount].
#: flock is per open-file-description, so a second open of the same lock
#: file *within one process* would spuriously conflict with itself; journal
#: objects in one process instead share the handle (one process = one
#: writer, which is the property the lock exists to enforce).
_PROCESS_LOCKS: Dict[str, list] = {}


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal-0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True  # exists but isn't ours (EPERM): definitely alive
    return True


class RunJournal:
    """Append-only JSONL journal of completed run cells."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._entries: Dict[str, dict] = {}
        self._lock_key: Optional[str] = None
        #: appends that failed durably (storage error after bounded retries)
        #: but were kept in memory; the cells re-run on a later resume.
        self.append_errors = 0

    @staticmethod
    def cell_key(**fields: object) -> str:
        """Canonical, order-independent key string for one cell."""
        return json.dumps(fields, sort_keys=True, default=str)

    # -- persistence --------------------------------------------------------
    def load(self) -> int:
        """Load journaled cells from disk; returns the number loaded.

        Tolerates a truncated last line (mid-write kill); raises
        :class:`JournalError` on corruption anywhere else.
        """
        self._entries.clear()
        if not self.path.exists():
            return 0
        lines = _read_lines(self.path)
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                key, payload = _decode_line(line)
            except (ValueError, KeyError, TypeError) as exc:
                if i == len(lines) - 1:
                    break  # truncated tail from a killed run: re-run that cell
                raise JournalError(
                    f"{self.path}: undecodable journal line {i + 1}: {line[:80]!r}"
                ) from exc
            self._entries[key] = payload
        return len(self._entries)

    def recover(self) -> dict:
        """Load the journal, salvaging instead of aborting on damage.

        Where :meth:`load` raises :class:`JournalError` on an interior bad
        line (strict mode for callers that must not mask corruption), this
        keeps every line that decodes and checksums, heals a torn tail by
        rewriting the file without it, and quarantines an interior-corrupt
        original to ``*.corrupt`` before rewriting the salvaged lines —
        so one damaged record costs one re-run, not the whole sweep.

        Returns an info dict: ``loaded`` (entries kept), ``dropped``
        (interior lines lost), ``torn_tail``, ``quarantined`` (path or
        None), ``rewritten``.
        """
        self._entries.clear()
        info = {
            "loaded": 0,
            "dropped": 0,
            "torn_tail": False,
            "quarantined": None,
            "rewritten": False,
        }
        if not self.path.exists():
            return info
        scan = scan_journal_lines(_read_lines(self.path))
        self._entries.update(scan["entries"])
        info["loaded"] = len(self._entries)
        info["torn_tail"] = scan["torn_tail"]
        info["dropped"] = len(scan["bad_lines"])
        if not scan["bad_lines"] and not scan["torn_tail"]:
            return info
        self.acquire_lock()
        if scan["bad_lines"]:
            dest = quarantine(self.path)
            info["quarantined"] = str(dest) if dest else None
            log.warning(
                "%s: %d corrupt journal line(s) %s; original quarantined to %s, "
                "%d salvaged cell(s) kept",
                self.path,
                len(scan["bad_lines"]),
                scan["bad_lines"],
                dest,
                info["loaded"],
            )
        salvaged = "".join(line + "\n" for line in scan["good_lines"])
        try:
            atomic_write_bytes(self.path, salvaged.encode("utf-8"))
            info["rewritten"] = True
        except StorageError as exc:
            log.warning("%s: could not rewrite salvaged journal: %s", self.path, exc)
        return info

    def record(self, key: str, payload: dict) -> None:
        """Append one completed cell as a single durable write.

        The payload is JSON-normalized (so the stored per-line CRC matches
        a load-side recompute bit-for-bit) and the whole line goes down in
        one ``os.write`` via :func:`repro.storage.atomic.append_line` — an
        ENOSPC mid-record is truncated away and retried rather than left as
        a torn tail. A write that still fails after the bounded retries is
        *logged and absorbed* (``append_errors`` counts it): the journal is
        an optimization, and losing one record costs one re-run while
        aborting would cost the sweep.
        """
        self.acquire_lock()
        payload = json.loads(json.dumps(payload, default=str))
        self._entries[key] = payload
        line = json.dumps(
            {"key": key, "payload": payload, "crc": _entry_crc(key, payload)}
        )
        try:
            append_line(self.path, line)
        except StorageError as exc:
            self.append_errors += 1
            log.warning(
                "%s: journal append failed (%s); cell kept in memory only",
                self.path,
                exc,
            )

    def clear(self) -> None:
        """Forget all entries and remove the on-disk file (fresh sweep)."""
        self.acquire_lock()
        self._entries.clear()
        if self.path.exists():
            self.path.unlink()

    # -- single-writer locking ----------------------------------------------
    @property
    def lock_path(self) -> Path:
        """The sidecar lock file guarding this journal."""
        return self.path.with_name(self.path.name + ".lock")

    def acquire_lock(self) -> None:
        """Take (or share) the exclusive writer lock on this journal.

        Raises :class:`JournalError` naming the holder's PID when another
        live *process* already writes here. Idempotent for the holder and
        shared between journal objects of one process; no-op on platforms
        without ``fcntl``. A killed holder releases automatically (flock
        dies with the process).
        """
        if fcntl is None or self._lock_key is not None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        key = os.path.abspath(self.lock_path)
        entry = _PROCESS_LOCKS.get(key)
        if entry is not None:
            entry[1] += 1
            self._lock_key = key
            return
        for final in (False, True):
            fh = open(self.lock_path, "a+", encoding="utf-8")
            try:
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                fh.seek(0)
                holder = fh.read().strip() or "unknown"
                fh.close()
                if not final and self._break_if_stale(holder):
                    continue  # sidecar unlinked: retry on a fresh inode
                raise JournalError(
                    f"{self.path}: journal is locked by another sweep "
                    f"(holder pid {holder}); two writers would interleave "
                    "partial lines — use a separate journal or wait for it"
                ) from None
            fh.seek(0)
            fh.truncate()
            fh.write(str(os.getpid()))
            fh.flush()
            _PROCESS_LOCKS[key] = [fh, 1]
            self._lock_key = key
            return

    def _break_if_stale(self, holder: str) -> bool:
        """Unlink the lock sidecar when its stamped holder is dead.

        The flock itself may still be held by an fd the dead holder's
        orphaned children inherited; removing the sidecar moves new writers
        onto a fresh inode the stale descriptor does not lock. Returns True
        when the lock was broken. An unparseable stamp is treated as live —
        a racing writer stamps its PID an instant after flocking, and
        breaking in that window would admit a second writer.
        """
        try:
            holder_pid = int(holder)
        except ValueError:
            return False
        if _pid_alive(holder_pid):
            return False
        try:
            os.unlink(self.lock_path)
        except FileNotFoundError:
            pass  # another contender broke it first; the retry sorts it out
        return True

    def release_lock(self) -> None:
        """Drop this object's hold on the writer lock; the last holder in
        the process releases it for real. The journal stays readable."""
        key, self._lock_key = self._lock_key, None
        if key is None:
            return
        entry = _PROCESS_LOCKS.get(key)
        if entry is None:
            return
        entry[1] -= 1
        if entry[1] <= 0:
            fh = entry[0]
            try:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
            finally:
                fh.close()
                del _PROCESS_LOCKS[key]

    def close(self) -> None:
        """Release the writer lock; alias for context-manager exit."""
        self.release_lock()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release_lock()

    def __del__(self) -> None:
        try:
            self.release_lock()
        except Exception:
            pass

    # -- lookup -------------------------------------------------------------
    def has(self, key: str) -> bool:
        """True when ``key``'s cell has a journaled payload."""
        return key in self._entries

    def get(self, key: str) -> Optional[dict]:
        """The journaled payload for ``key``, or None if absent."""
        return self._entries.get(key)

    def __len__(self) -> int:
        return len(self._entries)
