"""Per-run timeout and bounded retry with backoff.

Long sweeps multiply any single-run flakiness by the grid size: one hung or
crashed cell used to kill hours of work. :func:`guarded_run` wraps one
simulation call with (a) an optional wall-clock timeout and (b) a bounded
retry loop with exponential backoff, converting persistent failure into a
single typed :class:`~repro.harness.errors.RunFailedError` the sweep driver
can record and re-raise.

**Known limitation — the timeout cannot interrupt CPU-bound work.** The
timeout runs the call on a worker thread and *abandons* it on expiry:
CPython offers no safe way to kill a compute-bound thread, so the abandoned
attempt keeps burning a core (and, with retries, attempts can pile up)
until it finishes on its own; only its result is discarded. When that
happens a ``RuntimeWarning`` is emitted naming the still-running attempt.
Callers who need a *hard* guarantee — a hung simulation actually stops
consuming CPU — should run cells under
:class:`~repro.harness.executor.SupervisedExecutor`, which isolates each
cell in a child process and enforces its limits with SIGKILL.
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import dataclass
from typing import Callable, List, Optional, TypeVar

from repro.harness.errors import ConfigError, RunFailedError, RunTimeoutError

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry knobs for one guarded run.

    Attributes:
        attempts: total tries (1 = no retry).
        backoff_s: sleep before the first retry.
        backoff_factor: multiplier applied to the sleep after each retry.
        backoff_max_s: hard cap on any single retry sleep (None = uncapped).
            Without it ``backoff_s * factor^n`` grows without limit and a
            long retry budget can sleep for hours.
        jitter: apply *full jitter* — each retry sleeps a uniform draw from
            ``[0, capped_backoff]`` instead of the deterministic ladder, so
            a fleet of retriers doesn't thundering-herd in lockstep. The
            draw is seeded (``jitter_seed`` via the standard
            :class:`~repro.util.seeds.SeedSequencer` substream machinery)
            and keyed by label and attempt, so a seeded run's sleep
            schedule is still reproducible.
        jitter_seed: root seed of the jitter stream.
        timeout_s: per-attempt wall-clock budget (None = unbounded).
    """

    attempts: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: Optional[float] = None
    jitter: bool = False
    jitter_seed: int = 0
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_max_s is not None and self.backoff_max_s < 0:
            raise ValueError("backoff_max_s must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")

    def backoff_delay(self, failed_attempts: int, label: str = "run") -> float:
        """Sleep before the retry that follows ``failed_attempts`` failures.

        The exponential ladder ``backoff_s * factor^(n-1)`` clamped to
        ``backoff_max_s``; with ``jitter`` enabled, a seeded uniform draw
        from ``[0, clamped]`` (full jitter, per AWS's retry guidance).
        """
        if failed_attempts < 1:
            raise ValueError("failed_attempts must be >= 1")
        base = self.backoff_s * self.backoff_factor ** (failed_attempts - 1)
        if self.backoff_max_s is not None:
            base = min(base, self.backoff_max_s)
        if self.jitter and base > 0.0:
            from repro.util.seeds import SeedSequencer

            rng = SeedSequencer(self.jitter_seed).generator(
                "retry-jitter", label, failed_attempts
            )
            return float(rng.uniform(0.0, base))
        return base


def _call_with_timeout(fn: Callable[[], T], timeout_s: float, label: str) -> T:
    outcome: List = []  # [("ok", result)] or [("err", exception)]

    def _target() -> None:
        try:
            outcome.append(("ok", fn()))
        except BaseException as exc:  # noqa: BLE001 — re-raised on the caller
            outcome.append(("err", exc))

    worker = threading.Thread(target=_target, name=f"guarded-{label}", daemon=True)
    worker.start()
    worker.join(timeout_s)
    if worker.is_alive():
        # The attempt is *abandoned*, not stopped: a compute-bound thread
        # cannot be killed from Python, so it keeps consuming CPU until it
        # finishes on its own. Surface that loudly — silent zombie attempts
        # are how "timed-out" sweeps still peg every core.
        warnings.warn(
            f"{label}: timeout ({timeout_s:g}s) fired but the attempt is "
            "still running — in-process timeouts cannot interrupt CPU-bound "
            "work, so the abandoned thread keeps consuming CPU. For hard "
            "(SIGKILL) cancellation run cells under "
            "repro.harness.executor.SupervisedExecutor.",
            RuntimeWarning,
            stacklevel=3,
        )
        raise RunTimeoutError(label, timeout_s)
    status, value = outcome[0]
    if status == "err":
        raise value
    return value


def guarded_run(
    fn: Callable[[], T],
    retry: Optional[RetryPolicy] = None,
    label: str = "run",
) -> T:
    """Call ``fn`` under ``retry``'s timeout/retry policy.

    ``ConfigError`` propagates immediately (retrying an invalid config can
    never succeed). Any other exception — including a per-attempt timeout —
    is retried up to ``retry.attempts`` times; exhaustion raises
    :class:`RunFailedError` with the final failure chained.
    """
    policy = retry or RetryPolicy()
    last: Optional[BaseException] = None
    for attempt in range(1, policy.attempts + 1):
        try:
            if policy.timeout_s is None:
                return fn()
            return _call_with_timeout(fn, policy.timeout_s, label)
        except ConfigError:
            raise
        except Exception as exc:  # noqa: BLE001 — the guard exists to contain these
            last = exc
            if attempt < policy.attempts:
                delay = policy.backoff_delay(attempt, label)
                if delay > 0:
                    time.sleep(delay)
    raise RunFailedError(label, policy.attempts, last) from last
