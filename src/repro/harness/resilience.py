"""Per-run timeout and bounded retry with backoff.

Long sweeps multiply any single-run flakiness by the grid size: one hung or
crashed cell used to kill hours of work. :func:`guarded_run` wraps one
simulation call with (a) an optional wall-clock timeout and (b) a bounded
retry loop with exponential backoff, converting persistent failure into a
single typed :class:`~repro.harness.errors.RunFailedError` the sweep driver
can record and re-raise.

The timeout runs the call on a worker thread and abandons it on expiry
(CPython offers no safe way to kill a compute-bound thread); the abandoned
worker finishes in the background and its result is discarded. That is the
standard trade-off for in-process timeouts and is acceptable here because a
timed-out cell is rare and the process exits after the sweep.
"""

from __future__ import annotations

import concurrent.futures
import time
from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from repro.harness.errors import ConfigError, RunFailedError, RunTimeoutError

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry knobs for one guarded run.

    Attributes:
        attempts: total tries (1 = no retry).
        backoff_s: sleep before the first retry.
        backoff_factor: multiplier applied to the sleep after each retry.
        timeout_s: per-attempt wall-clock budget (None = unbounded).
    """

    attempts: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")


def _call_with_timeout(fn: Callable[[], T], timeout_s: float, label: str) -> T:
    pool = concurrent.futures.ThreadPoolExecutor(max_workers=1)
    try:
        future = pool.submit(fn)
        try:
            return future.result(timeout=timeout_s)
        except concurrent.futures.TimeoutError:
            raise RunTimeoutError(label, timeout_s) from None
    finally:
        pool.shutdown(wait=False)


def guarded_run(
    fn: Callable[[], T],
    retry: Optional[RetryPolicy] = None,
    label: str = "run",
) -> T:
    """Call ``fn`` under ``retry``'s timeout/retry policy.

    ``ConfigError`` propagates immediately (retrying an invalid config can
    never succeed). Any other exception — including a per-attempt timeout —
    is retried up to ``retry.attempts`` times; exhaustion raises
    :class:`RunFailedError` with the final failure chained.
    """
    policy = retry or RetryPolicy()
    delay = policy.backoff_s
    last: Optional[BaseException] = None
    for attempt in range(1, policy.attempts + 1):
        try:
            if policy.timeout_s is None:
                return fn()
            return _call_with_timeout(fn, policy.timeout_s, label)
        except ConfigError:
            raise
        except Exception as exc:  # noqa: BLE001 — the guard exists to contain these
            last = exc
            if attempt < policy.attempts and delay > 0:
                time.sleep(delay)
                delay *= policy.backoff_factor
    raise RunFailedError(label, policy.attempts, last) from last
