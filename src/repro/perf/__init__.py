"""Performance engineering toolkit (DESIGN.md §10).

Deterministic wall-clock benchmarks of the detailed simulator, the trace
generator, and the trace cache (:mod:`repro.perf.bench`), plus a per-stage
cycle-accounting profiler (:mod:`repro.perf.profiler`).  Exposed through
``repro bench`` on the CLI; CI runs the quick variant against the
committed ``BENCH_PR4.json`` baseline.
"""

from repro.perf.bench import (
    PRE_PR_BASELINE,
    BenchReport,
    compare_to_baseline,
    load_report_json,
    run_benchmarks,
    write_report,
)
from repro.perf.profiler import StageProfiler

__all__ = [
    "PRE_PR_BASELINE",
    "BenchReport",
    "compare_to_baseline",
    "load_report_json",
    "run_benchmarks",
    "write_report",
    "StageProfiler",
]
