"""Deterministic wall-clock benchmark runner (``repro bench``).

Every benchmark is a fixed seeded workload, so simulated work is identical
across runs and machines; only wall-clock varies.  Reported rates are
simulated-cycles/s and committed-instructions/s, best-of-N to shave
scheduler noise.  The report carries machine and git metadata so a
committed ``BENCH_PR4.json`` is interpretable later, plus the pre-PR
seed-commit rates (:data:`PRE_PR_BASELINE`, measured on the same reference
machine) so the speedup of the fast-path engine stays visible.

CI regression gate: :func:`compare_to_baseline` flags any benchmark whose
rate fell more than ``band`` (default 40%, generous because CI machines
differ) below the committed baseline.
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import subprocess
import tempfile
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

from repro.storage.artifact import embed_json_artifact, load_json_artifact
from repro.storage.atomic import atomic_write_bytes

#: Artifact-envelope format name for bench report JSON documents.
BENCH_FORMAT = "bench-report"
BENCH_FORMAT_VERSION = 1

#: Rates measured at the seed commit (pre-PR-4 engine) on the reference
#: machine, same workloads as the ``detailed_*`` benchmarks below.  The
#: ``speedup_vs_pre_pr`` figures in the report are relative to these.
PRE_PR_BASELINE: Dict[str, Dict[str, float]] = {
    "detailed_icount_mix07": {
        "wall_s": 0.571, "cycles_per_s": 14357.0, "instr_per_s": 28848.0,
    },
    "detailed_adts_mix05": {
        "wall_s": 0.589, "cycles_per_s": 13911.0, "instr_per_s": 26950.0,
    },
}


@dataclass
class BenchReport:
    """One ``repro bench`` invocation's results plus provenance."""

    quick: bool
    seed: int
    machine: Dict[str, object]
    git: Dict[str, str]
    benchmarks: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        """JSON-serializable form (what ``BENCH_PR4.json`` holds)."""
        return {
            "quick": self.quick,
            "seed": self.seed,
            "machine": self.machine,
            "git": self.git,
            "pre_pr_baseline": PRE_PR_BASELINE,
            "benchmarks": self.benchmarks,
        }


def _machine_metadata() -> Dict[str, object]:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpus": os.cpu_count(),
    }


def _git_metadata() -> Dict[str, str]:
    meta = {}
    for key, cmd in (
        ("commit", ["git", "rev-parse", "HEAD"]),
        ("branch", ["git", "rev-parse", "--abbrev-ref", "HEAD"]),
    ):
        try:
            meta[key] = subprocess.run(
                cmd, capture_output=True, text=True, timeout=10, check=True,
            ).stdout.strip()
        except Exception:
            meta[key] = "unknown"
    return meta


def _best_of(fn: Callable[[], Tuple[int, int]], repeats: int) -> Tuple[float, int, int]:
    """Run ``fn`` ``repeats`` times; return (best wall, cycles, instrs).

    ``fn`` must rebuild its workload each call, so every repeat simulates
    the identical cycle count — the minimum wall time is then the cleanest
    estimate of the engine's speed.
    """
    best = None
    cycles = instrs = 0
    for _ in range(max(1, repeats)):
        t0 = perf_counter()
        cycles, instrs = fn()
        dt = perf_counter() - t0
        if best is None or dt < best:
            best = dt
    return best, cycles, instrs


def _rate_entry(wall_s: float, cycles: int, instrs: int) -> Dict[str, object]:
    return {
        "wall_s": round(wall_s, 4),
        "sim_cycles": cycles,
        "instructions": instrs,
        "cycles_per_s": round(cycles / wall_s, 1) if wall_s else 0.0,
        "instr_per_s": round(instrs / wall_s, 1) if wall_s else 0.0,
        "ipc": round(instrs / cycles, 4) if cycles else 0.0,
    }


def _detailed_fixed(seed: int, quanta: int) -> Tuple[int, int]:
    from repro import build_processor

    proc = build_processor(mix="mix07", seed=seed, policy="icount",
                           quantum_cycles=1024)
    proc.run_quanta(quanta)
    return proc.now, proc.stats.committed


def _detailed_adts(seed: int, quanta: int) -> Tuple[int, int]:
    from repro import build_processor
    from repro.core.adts import ADTSController
    from repro.core.thresholds import ThresholdConfig

    hook = ADTSController(heuristic="type3",
                          thresholds=ThresholdConfig(ipc_threshold=2.0))
    proc = build_processor(mix="mix05", seed=seed, policy="icount", hook=hook,
                           quantum_cycles=1024)
    proc.run_quanta(quanta)
    return proc.now, proc.stats.committed


def _bench_tracegen(seed: int, count: int) -> Dict[str, object]:
    from repro.workloads.tracegen import make_generators

    gens = make_generators(["gzip", "crafty", "swim", "mcf"], seed=seed)
    per_gen = count // len(gens)
    t0 = perf_counter()
    for gen in gens:
        for _ in range(per_gen):
            gen.next_instruction()
    wall = perf_counter() - t0
    total = per_gen * len(gens)
    return {
        "wall_s": round(wall, 4),
        "instructions": total,
        "instr_per_s": round(total / wall, 1) if wall else 0.0,
    }


def _bench_trace_cache(seed: int, quanta: int,
                       cache_dir: Optional[str]) -> Dict[str, object]:
    """Cold (record) vs warm (replay) detailed run through the trace cache.

    Verifies bit-identity (cold and warm fingerprints must match) and
    reports the cache's own counters so hits are observable in the JSON.
    """
    from repro import build_processor
    from repro.workloads.tracecache import (
        active_trace_cache,
        flush_trace_cache,
        set_trace_cache,
    )

    previous = active_trace_cache()
    tmp = None
    if cache_dir is None:
        tmp = tempfile.mkdtemp(prefix="repro-bench-tc-")
        cache_dir = tmp
    try:
        cache = set_trace_cache(cache_dir)

        def one_run():
            proc = build_processor(mix="mix07", seed=seed, policy="icount",
                                   quantum_cycles=1024)
            t0 = perf_counter()
            proc.run_quanta(quanta)
            return perf_counter() - t0, proc.fingerprint()

        cold_s, cold_fp = one_run()
        flush_trace_cache()
        warm_s, warm_fp = one_run()
        flush_trace_cache()
        return {
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "warm_speedup": round(cold_s / warm_s, 3) if warm_s else 0.0,
            "bit_identical": cold_fp == warm_fp,
            "cache": dict(cache.stats),
        }
    finally:
        set_trace_cache(previous)
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)


def run_benchmarks(quick: bool = False, seed: int = 0,
                   trace_cache_dir: Optional[str] = None) -> BenchReport:
    """Run the benchmark suite and return a :class:`BenchReport`.

    ``quick`` halves the simulated quanta and repeats — the CI smoke
    variant; rates (cycles/s, instr/s) stay comparable to a full run.
    """
    quanta = 4 if quick else 8
    repeats = 2 if quick else 3
    report = BenchReport(
        quick=quick, seed=seed,
        machine=_machine_metadata(), git=_git_metadata(),
    )

    for name, fn in (
        ("detailed_icount_mix07", lambda: _detailed_fixed(seed, quanta)),
        ("detailed_adts_mix05", lambda: _detailed_adts(seed, quanta)),
    ):
        wall, cycles, instrs = _best_of(fn, repeats)
        entry = _rate_entry(wall, cycles, instrs)
        pre = PRE_PR_BASELINE.get(name)
        if pre:
            entry["speedup_vs_pre_pr"] = round(
                entry["cycles_per_s"] / pre["cycles_per_s"], 3)
        report.benchmarks[name] = entry

    # The engine's full fast path — hot loop plus trace-cache replay — on
    # the headline workload.  Replay is bit-identical to live generation
    # (checked by the trace_cache benchmark below and the golden tests).
    from repro.workloads.tracecache import (
        active_trace_cache,
        flush_trace_cache,
        set_trace_cache,
    )

    previous = active_trace_cache()
    tmp = None
    warm_dir = trace_cache_dir
    if warm_dir is None:
        tmp = tempfile.mkdtemp(prefix="repro-bench-warm-")
        warm_dir = tmp
    try:
        set_trace_cache(warm_dir)
        _detailed_fixed(seed, quanta)  # recording pass: warm the cache
        flush_trace_cache()
        wall, cycles, instrs = _best_of(
            lambda: _detailed_fixed(seed, quanta), repeats)
        flush_trace_cache()
        entry = _rate_entry(wall, cycles, instrs)
        pre = PRE_PR_BASELINE["detailed_icount_mix07"]
        entry["speedup_vs_pre_pr"] = round(
            entry["cycles_per_s"] / pre["cycles_per_s"], 3)
        entry["trace_cache"] = "warm"
        report.benchmarks["detailed_icount_mix07_warm"] = entry
    finally:
        set_trace_cache(previous)
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)

    report.benchmarks["tracegen"] = _bench_tracegen(
        seed, 20_000 if quick else 100_000)
    report.benchmarks["trace_cache"] = _bench_trace_cache(
        seed, quanta, trace_cache_dir)
    return report


#: Per-cell rates committed in ``BENCH_PR4.json`` — the reference the batch
#: engine's aggregate sweep throughput is measured against
#: (``speedup_vs_pr4``). ``detailed_adts_mix05`` is the comparable
#: workload: the sweep benchmark's cells are the same mix/quantum/engine
#: configuration at a grid of thresholds and heuristics.
PR4_PER_CELL_BASELINE: Dict[str, float] = {
    "detailed_adts_mix05": 25697.5,  # cycles/s
    "detailed_icount_mix07": 22771.8,
    "detailed_icount_mix07_warm": 31890.1,
}

SWEEP_THRESHOLDS = (1.0, 2.0, 3.0, 4.0, 5.0)
SWEEP_HEURISTICS = ("type1", "type2", "type3", "type3g", "type4")
SWEEP_MIX = "mix05"


def _sweep_cells(seed: int, quanta: int):
    from repro.core.thresholds import ThresholdConfig
    from repro.smt.batch import BatchCell

    return [
        BatchCell(
            mix=SWEEP_MIX, seed=seed, quantum_cycles=1024, quanta=quanta,
            warmup_quanta=0, heuristic=h,
            thresholds=ThresholdConfig(ipc_threshold=m),
        )
        for m in SWEEP_THRESHOLDS
        for h in SWEEP_HEURISTICS
    ]


def _bench_sweep(seed: int, quanta: int) -> Dict[str, object]:
    """Aggregate sweep throughput: lockstep batch engine vs sequential cells.

    Both paths simulate the identical 5x5 threshold x heuristic ADTS grid
    on one mix and must land on identical per-cell fingerprints — the
    benchmark *is* a bit-identity gate, not just a stopwatch. The entry
    carries the engine's sharing telemetry (grouping, forks, quantum-step
    dedup) as the profile of where the speedup comes from and what bounds
    it: cells that take identical trajectories share machine steps, so the
    ceiling is the grid's trajectory diversity, not the cell count.
    """
    from repro import build_processor
    from repro.core.adts import ADTSController
    from repro.core.thresholds import ThresholdConfig
    from repro.smt.batch import BatchEngine

    def sequential_cell(m: float, h: str) -> Tuple[str, int]:
        hook = ADTSController(heuristic=h,
                              thresholds=ThresholdConfig(ipc_threshold=m))
        proc = build_processor(mix=SWEEP_MIX, seed=seed, policy="icount",
                               hook=hook, quantum_cycles=1024)
        proc.run_quanta(quanta)
        return proc.fingerprint(), proc.stats.committed

    t0 = perf_counter()
    seq = {
        (m, h): sequential_cell(m, h)
        for m in SWEEP_THRESHOLDS
        for h in SWEEP_HEURISTICS
    }
    seq_wall = perf_counter() - t0

    cells = _sweep_cells(seed, quanta)
    t0 = perf_counter()
    engine = BatchEngine(cells)
    results = engine.run()
    batch_wall = perf_counter() - t0

    bit_identical = all(
        r.fingerprint == seq[(r.cell.thresholds.ipc_threshold, r.cell.heuristic)][0]
        for r in results
    )
    n = len(cells)
    sim_cycles = n * quanta * 1024
    instrs = sum(committed for (_fp, committed) in seq.values())
    speedup = seq_wall / batch_wall if batch_wall else 0.0
    entry: Dict[str, object] = {
        "grid": {
            "mix": SWEEP_MIX,
            "thresholds": list(SWEEP_THRESHOLDS),
            "heuristics": list(SWEEP_HEURISTICS),
            "quantum_cycles": 1024,
            "quanta": quanta,
        },
        "cells": n,
        "bit_identical": bit_identical,
        "sequential": {
            "wall_s": round(seq_wall, 4),
            "cells_per_s": round(n / seq_wall, 3) if seq_wall else 0.0,
            "cycles_per_s": round(sim_cycles / seq_wall, 1) if seq_wall else 0.0,
            "instr_per_s": round(instrs / seq_wall, 1) if seq_wall else 0.0,
        },
        "batch": {
            "wall_s": round(batch_wall, 4),
            "cells_per_s": round(n / batch_wall, 3) if batch_wall else 0.0,
            "cycles_per_s": round(sim_cycles / batch_wall, 1) if batch_wall else 0.0,
            "instr_per_s": round(instrs / batch_wall, 1) if batch_wall else 0.0,
        },
        "speedup_batch_vs_sequential": round(speedup, 3),
        "telemetry": dict(engine.telemetry),
    }
    steps = engine.telemetry["quantum_steps"]
    steps_seq = engine.telemetry["quantum_steps_sequential"]
    entry["quantum_step_dedup"] = round(steps_seq / steps, 3) if steps else 0.0
    batch_rate = entry["batch"]["cycles_per_s"]
    entry["speedup_vs_pr4"] = {
        name: round(batch_rate / per_cell, 3)
        for name, per_cell in PR4_PER_CELL_BASELINE.items()
    }
    # The honest context for the headline number: dedup is bounded by how
    # many *distinct* trajectories the grid's cells actually take.
    entry["profile"] = {
        "distinct_trajectories": engine.telemetry["groups_final"],
        "dedup_ceiling": entry["quantum_step_dedup"],
        "note": (
            "aggregate throughput = per-step engine speed x quantum-step "
            "dedup; the dedup ratio is bounded by the grid's trajectory "
            "diversity (distinct_trajectories of cells), so longer runs "
            "asymptote to cells/distinct_trajectories"
        ),
    }
    return entry


def run_sweep_benchmarks(quick: bool = False, seed: int = 0) -> BenchReport:
    """The ``repro bench --sweep`` report: one sweep-throughput family.

    ``quick`` runs 4 quanta per cell (the CI smoke variant); full mode runs
    8, matching the per-cell ``detailed_adts_mix05`` workload that
    ``BENCH_PR4.json``'s per-cell rates were recorded on.
    """
    report = BenchReport(
        quick=quick, seed=seed,
        machine=_machine_metadata(), git=_git_metadata(),
    )
    report.benchmarks["sweep_throughput"] = _bench_sweep(
        seed, 4 if quick else 8)
    return report


def write_report(path: str, report) -> None:
    """Atomically write a report as a checksummed JSON artifact.

    Accepts a :class:`BenchReport` or an already-built payload dict. The
    document stays plain greppable JSON; the embedded ``"artifact"`` block
    carries format/version/CRC so ``repro fsck`` can audit it.
    """
    payload = report.to_dict() if isinstance(report, BenchReport) else dict(report)
    doc = embed_json_artifact(payload, BENCH_FORMAT, BENCH_FORMAT_VERSION)
    blob = json.dumps(doc, indent=2, sort_keys=True, default=str) + "\n"
    atomic_write_bytes(path, blob.encode("utf-8"))


def load_report_json(path: str) -> Dict:
    """Load a bench-report JSON document (enveloped or legacy plain JSON).

    Validates the embedded checksum when present; a legacy document (like
    the committed ``BENCH_PR4.json``) loads as-is.
    """
    _, payload = load_json_artifact(path, expect_format=BENCH_FORMAT)
    return payload


def compare_to_baseline(report: BenchReport, baseline_path: str,
                        band: float = 0.40) -> List[str]:
    """Regression check against a committed benchmark JSON.

    Returns human-readable failure strings for every benchmark whose rate
    dropped more than ``band`` below the baseline; empty list means pass.
    Only rate metrics are compared (wall seconds differ per machine but a
    >40% rate drop on the same workload signals a real slowdown).
    """
    baseline = load_report_json(baseline_path)
    failures = []
    for name, entry in report.benchmarks.items():
        base = baseline.get("benchmarks", {}).get(name)
        if not base:
            continue
        for metric in ("cycles_per_s", "instr_per_s"):
            new, old = entry.get(metric), base.get(metric)
            if not new or not old:
                continue
            floor = old * (1.0 - band)
            if new < floor:
                failures.append(
                    f"{name}.{metric}: {new:.0f} < {floor:.0f} "
                    f"(baseline {old:.0f}, band {band:.0%})"
                )
    tc = report.benchmarks.get("trace_cache")
    if tc is not None and not tc.get("bit_identical", True):
        failures.append("trace_cache: cold/warm fingerprints diverged")
    return failures


def format_report(report: BenchReport) -> str:
    """Terminal rendering of a report."""
    lines = [f"repro bench ({'quick' if report.quick else 'full'}), "
             f"commit {report.git.get('commit', '?')[:12]}"]
    for name, entry in report.benchmarks.items():
        if "cycles_per_s" in entry:
            speed = entry.get("speedup_vs_pre_pr")
            suffix = f"  ({speed:.2f}x vs pre-PR)" if speed else ""
            lines.append(
                f"  {name:<24} {entry['wall_s']:>7.3f}s  "
                f"{entry['cycles_per_s']:>9.0f} cyc/s  "
                f"{entry['instr_per_s']:>9.0f} instr/s{suffix}")
        elif "warm_speedup" in entry:
            lines.append(
                f"  {name:<24} cold {entry['cold_s']:.3f}s -> warm "
                f"{entry['warm_s']:.3f}s ({entry['warm_speedup']:.2f}x, "
                f"bit_identical={entry['bit_identical']}, "
                f"hits={entry['cache']['hits']})")
        elif "speedup_batch_vs_sequential" in entry:
            tel = entry["telemetry"]
            pr4 = entry["speedup_vs_pr4"].get("detailed_adts_mix05")
            pr4_sfx = f", {pr4:.2f}x vs PR4 per-cell" if pr4 else ""
            lines.append(
                f"  {name:<24} seq {entry['sequential']['wall_s']:.3f}s -> "
                f"batch {entry['batch']['wall_s']:.3f}s "
                f"({entry['speedup_batch_vs_sequential']:.2f}x{pr4_sfx}, "
                f"bit_identical={entry['bit_identical']})")
            lines.append(
                f"  {'':<24} {entry['cells']} cells -> "
                f"{tel['groups_final']} trajectories, {tel['forks']} forks, "
                f"steps {tel['quantum_steps']}/"
                f"{tel['quantum_steps_sequential']} "
                f"(dedup ceiling {entry['quantum_step_dedup']:.2f}x)")
        else:
            lines.append(
                f"  {name:<24} {entry['wall_s']:>7.3f}s  "
                f"{entry['instr_per_s']:>9.0f} instr/s")
    return "\n".join(lines)
