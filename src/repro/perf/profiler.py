"""Per-stage wall-clock accounting for the detailed pipeline.

The pipeline's ``step()`` dispatches each stage through ``self._commit``,
``self._complete``, … — instance-attribute lookups — so the profiler can
interpose timed wrappers on one *instance* without touching the class or
slowing down unprofiled processors.  Shares answer the optimisation
question directly: which stage owns the cycle budget.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict


class StageProfiler:
    """Attach timed wrappers to one :class:`SMTProcessor`'s stage methods.

    Usage::

        prof = StageProfiler(proc)
        with prof:
            proc.run_quanta(8)
        print(prof.report())

    Idle-cycle skipping is disabled while the profiler is attached so every
    simulated cycle runs (and is charged to) its real stages.
    """

    STAGES = (
        "_commit",
        "_complete",
        "_drain_miss_gauges",
        "_syscall_drain_check",
        "_issue",
        "_dispatch",
        "_fetch",
    )

    def __init__(self, proc) -> None:
        self.proc = proc
        self.seconds: Dict[str, float] = {s: 0.0 for s in self.STAGES}
        self._saved_idle_skip = None
        self._installed = False

    def _timed(self, name: str, fn):
        seconds = self.seconds

        def wrapped(*args):
            t0 = perf_counter()
            try:
                return fn(*args)
            finally:
                seconds[name] += perf_counter() - t0

        return wrapped

    def install(self) -> "StageProfiler":
        """Shadow each stage method with a timing wrapper on the instance."""
        if self._installed:
            return self
        proc = self.proc
        self._saved_idle_skip = proc._idle_skip
        proc._idle_skip = False
        for name in self.STAGES:
            setattr(proc, name, self._timed(name, getattr(proc, name)))
        self._installed = True
        return self

    def uninstall(self) -> None:
        """Remove the wrappers, restoring the plain class methods."""
        if not self._installed:
            return
        proc = self.proc
        for name in self.STAGES:
            if name in getattr(proc, "__dict__", {}):
                delattr(proc, name)
        proc._idle_skip = self._saved_idle_skip
        self._installed = False

    def __enter__(self) -> "StageProfiler":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.uninstall()

    def report(self) -> Dict[str, Dict[str, float]]:
        """Per-stage seconds and share of the total profiled stage time."""
        total = sum(self.seconds.values())
        return {
            name: {
                "seconds": secs,
                "share": secs / total if total else 0.0,
            }
            for name, secs in sorted(
                self.seconds.items(), key=lambda kv: kv[1], reverse=True
            )
        }
