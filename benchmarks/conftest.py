"""Shared benchmark configuration.

Benchmarks are the reproduction harness: each file regenerates one paper
artifact (see DESIGN.md §4) in *quick* mode — reduced mix set and quantum
count so the whole suite runs in minutes on the detailed simulator. The
full 13-mix, paper-scale grid runs on the fast model
(`test_fastmodel_full_grid.py`) and via `examples/fast_sweep.py`.

Results are printed as tables/series (run with ``-s`` to see them live) and
written as JSON under ``results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.harness.experiments import ExperimentDefaults, run_grid

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

#: Quick-mode experiment configuration shared by every benchmark.
QUICK = ExperimentDefaults(
    quantum_cycles=2048,
    quanta=16,
    warmup_quanta=4,
    seed=0,
    quick_mixes=("mix02", "mix07", "mix10"),
)


def save_result(name: str, payload: dict) -> None:
    """Persist one experiment's output for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, default=str))


@pytest.fixture(scope="session")
def quick_defaults() -> ExperimentDefaults:
    return QUICK


@pytest.fixture(scope="session")
def detailed_grid(quick_defaults):
    """The shared threshold x heuristic grid on the detailed simulator.

    Computed once per session; Figure 7 and Figure 8 benches all read from
    it (the paper's figures are four views of the same sweep).
    """
    return run_grid(quick_defaults, quick=True)
