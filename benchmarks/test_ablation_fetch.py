"""A1 — fetch-partitioning ablation (paper §5, citing Burns & Gaudiot:
"fetching all eight instructions from one thread can adversely affect the
performance due to fetch fragmentation").

Two operating regions are measured on the homogeneous high-IPC mix:

* **full-width (8)** — the calibrated machine is memory-bound, not
  fetch-bound, so partitioning barely matters (reported, asserted flat);
* **narrow fetch (4)** — fetch bandwidth binds, and the fragmentation
  effect appears: ICOUNT.2.4 beats ICOUNT.1.4 because a single thread
  rarely fills the fetch block before a cache-block boundary or taken
  branch.
"""

from conftest import QUICK, save_result

from repro import build_processor
from repro.harness.report import format_table
from repro.smt.config import SMTConfig


def run_variant(fetch_width: int, threads_per_cycle: int) -> float:
    cfg = SMTConfig(fetch_width=fetch_width, fetch_threads_per_cycle=threads_per_cycle)
    proc = build_processor(mix="mix09", config=cfg, seed=0,
                           quantum_cycles=QUICK.quantum_cycles)
    proc.run_quanta(QUICK.warmup_quanta)
    base_committed, base_cycles = proc.stats.committed, proc.now
    proc.run_quanta(QUICK.quanta)
    return (proc.stats.committed - base_committed) / (proc.now - base_cycles)


def test_fetch_partitioning_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: {
            (w, n): run_variant(w, n) for w in (8, 4) for n in (1, 2, 4)
        },
        rounds=1, iterations=1,
    )
    print()
    print(format_table(
        ["fetch_width", "threads_per_cycle", "ipc"],
        [[w, n, ipc] for (w, n), ipc in sorted(result.items(), reverse=True)],
        title="A1: ICOUNT.n.w fetch partitioning (mix09)",
    ))
    save_result("A1_fetch_partitioning", {f"{w}.{n}": v for (w, n), v in result.items()})

    # Narrow fetch: bandwidth binds, partitioning matters (Burns&Gaudiot).
    assert result[(4, 2)] > result[(4, 1)] * 1.01, \
        "ICOUNT.2.4 must beat ICOUNT.1.4 when fetch binds"
    # Beyond two threads: diminishing returns.
    assert result[(4, 4)] < result[(4, 2)] * 1.10
    # Full width: the calibrated machine is not fetch-bound; partitioning
    # is second-order there (documented insensitivity).
    wide = [result[(8, n)] for n in (1, 2, 4)]
    assert max(wide) - min(wide) < 0.15 * max(wide)
