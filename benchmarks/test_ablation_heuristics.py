"""A2 — heuristic-feature ablations: gradient hold (Type 3 -> 3') and
switching history (Type 3' -> 4), plus DT-latency ablation.

Paper findings probed: the gradient feature suppresses switching; the
history feature is "not worthy of the efforts" (Type 4 produces more
malignant switches than Type 3'); charging real DT latency changes little.
"""

from conftest import QUICK, save_result

from repro.core.thresholds import ThresholdConfig
from repro.harness.runner import run_adts
from repro.harness.report import format_table

from dataclasses import replace


def run_one(heuristic: str, instant_dt: bool = False) -> dict:
    th = ThresholdConfig(ipc_threshold=3.0)  # high enough to exercise all
    ipcs, switches, benign_w = [], 0, 0.0
    for mix in QUICK.quick_mixes:
        r = run_adts(replace(QUICK.base_run(), mix=mix), heuristic=heuristic,
                     thresholds=th, instant_dt=instant_dt)
        ipcs.append(r.ipc)
        n = r.scheduler.get("switches", 0)
        switches += n
        benign_w += r.scheduler.get("benign_probability", 0.0) * n
    return {
        "ipc": sum(ipcs) / len(ipcs),
        "switches": switches,
        "benign": benign_w / switches if switches else 0.0,
    }


def test_heuristic_feature_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: {
            "type3": run_one("type3"),
            "type3g": run_one("type3g"),
            "type4": run_one("type4"),
            "type3g_instant_dt": run_one("type3g", instant_dt=True),
        },
        rounds=1, iterations=1,
    )
    print()
    print(format_table(
        ["variant", "ipc", "switches", "P(benign)"],
        [[k, v["ipc"], v["switches"], v["benign"]] for k, v in result.items()],
        title="A2: heuristic feature ablation (threshold 3)",
    ))
    save_result("A2_heuristic_ablation", result)

    # Gradient hold strictly reduces switching activity.
    assert result["type3g"]["switches"] <= result["type3"]["switches"]
    # History (Type 4) must not *help* relative to Type 3' (paper: it
    # produces more low-quality switches).
    assert result["type4"]["ipc"] <= result["type3g"]["ipc"] * 1.05
    # DT latency barely matters (feasibility claim).
    assert abs(result["type3g_instant_dt"]["ipc"] - result["type3g"]["ipc"]) \
        < 0.08 * result["type3g"]["ipc"]
