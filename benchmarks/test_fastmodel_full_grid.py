"""F7/F8 at paper scale — the full 13-mix x 5-threshold x 5-type grid on
the fast quantum-level model (the detailed simulator runs the reduced grid
in the other Figure 7/8 benches; see DESIGN.md §2 for the layering).

Reproduction targets asserted here, on the full mix set:
* fixed-policy ordering: ICOUNT best, RR worst (Table 1 / §1);
* Fig 7(a): switch counts grow with the threshold and saturate;
* Fig 7(c): P(benign) declines as the threshold grows;
* Fig 8: the IPC-vs-threshold curve has an interior optimum near the
  paper's best threshold (2), and the best adaptive cell beats fixed
  ICOUNT.
"""

import numpy as np
from conftest import save_result

from repro.core.thresholds import ThresholdConfig
from repro.fastmodel import fast_run_adts, fast_run_fixed
from repro.harness.report import format_series
from repro.workloads import mix_names

THRESHOLDS = (1.0, 2.0, 3.0, 4.0, 5.0)
HEURISTICS = ("type1", "type2", "type3", "type3g", "type4")
QUANTA = 96


def full_grid():
    mixes = mix_names()
    fixed = {
        p: float(np.mean([fast_run_fixed(m, p, quanta=QUANTA).ipc for m in mixes]))
        for p in ("icount", "brcount", "l1misscount", "rr")
    }
    ipc, switches, benign = {}, {}, {}
    for m in THRESHOLDS:
        th = ThresholdConfig(ipc_threshold=m)
        for h in HEURISTICS:
            runs = [fast_run_adts(mix, h, th, quanta=QUANTA) for mix in mixes]
            ipc[(m, h)] = float(np.mean([r.ipc for r in runs]))
            switches[(m, h)] = sum(r.switches for r in runs)
            judged = sum(r.switches for r in runs)
            benign[(m, h)] = (
                sum(r.benign_probability * r.switches for r in runs) / judged
                if judged else 0.0
            )
    return fixed, ipc, switches, benign


def test_full_grid_on_fast_model(benchmark):
    fixed, ipc, switches, benign = benchmark.pedantic(full_grid, rounds=1, iterations=1)
    print()
    print("fixed policies (13-mix mean):", {k: round(v, 3) for k, v in fixed.items()})
    for h in HEURISTICS:
        print(format_series(f"IPC[{h}]", THRESHOLDS, [ipc[(m, h)] for m in THRESHOLDS]))
    for h in HEURISTICS:
        print(format_series(f"switches[{h}]", THRESHOLDS, [switches[(m, h)] for m in THRESHOLDS]))
    for h in HEURISTICS:
        print(format_series(f"P(benign)[{h}]", THRESHOLDS, [benign[(m, h)] for m in THRESHOLDS]))
    best = max(ipc, key=ipc.get)
    print(f"best cell: threshold {best[0]:g}, {best[1]} -> {ipc[best]:.3f} "
          f"({ipc[best] / fixed['icount'] - 1:+.2%} vs fixed ICOUNT)")
    save_result("F7F8_fastmodel_full_grid", {
        "fixed": fixed,
        "ipc": {f"{m:g},{h}": v for (m, h), v in ipc.items()},
        "switches": {f"{m:g},{h}": v for (m, h), v in switches.items()},
        "benign": {f"{m:g},{h}": v for (m, h), v in benign.items()},
        "best_cell": {"threshold": best[0], "heuristic": best[1], "ipc": ipc[best]},
    })

    # Table-1 ordering at full scale.
    assert fixed["icount"] == max(fixed.values())
    assert fixed["rr"] == min(fixed.values())
    # Fig 7(a): growth then saturation of switch counts (small jitter on
    # the saturated plateau allowed).
    for h in HEURISTICS:
        counts = [switches[(m, h)] for m in THRESHOLDS]
        assert counts[0] <= counts[2] * 1.02 + 2
        assert counts[2] <= counts[4] * 1.02 + 2
        assert counts[4] > counts[0]
    # Fig 7(c): benign probability declines from low to high thresholds.
    for h in HEURISTICS:
        assert benign[(1.0, h)] >= benign[(5.0, h)] - 0.05
    # Fig 8: interior optimum at or near threshold 2, beating fixed ICOUNT.
    best_m, best_h = best
    assert best_m in (2.0, 3.0), f"interior optimum expected, got {best_m}"
    assert ipc[best] > fixed["icount"]
    # Per-type curves peak away from the extreme threshold 5.
    for h in HEURISTICS:
        curve = [ipc[(m, h)] for m in THRESHOLDS]
        assert max(curve) >= curve[-1]
