"""A3 — oracle upper bound (paper §1: "a single fixed thread scheduling
policy presents much room (some 30%) for improvement compared to an
oracle-scheduled case", citing the authors' earlier study [15]).

The oracle forks machine state at every quantum boundary and runs each
candidate policy; reproduction target: the clairvoyant schedule is at least
as good as fixed ICOUNT, quantifying the adaptive-scheduling headroom in
*this* simulator (magnitude discussion in EXPERIMENTS.md).
"""

from conftest import QUICK, save_result

from repro import build_processor
from repro.core.oracle import oracle_upper_bound


def test_oracle_upper_bound(benchmark):
    def make():
        return build_processor(mix="mix07", seed=0, quantum_cycles=QUICK.quantum_cycles)

    result = benchmark.pedantic(
        lambda: oracle_upper_bound(make, quanta=8), rounds=1, iterations=1
    )
    print()
    print(f"oracle IPC {result['oracle_ipc']:.3f} vs fixed ICOUNT "
          f"{result['fixed_icount_ipc']:.3f} (headroom {result['headroom']:+.2%})")
    print(f"oracle policy usage: {result['policy_usage']}")
    save_result("A3_oracle_bound", result)

    assert result["oracle_ipc"] > 0
    # Clairvoyant per-quantum choice cannot lose to always-ICOUNT beyond
    # state-divergence noise.
    assert result["headroom"] > -0.04
    assert sum(result["policy_usage"].values()) == 8
