"""F7c/F7d — Figure 7(c)(d): probability of benign switches vs. threshold
and vs. heuristic type.

Reproduction target: switch quality *decreases* as the threshold grows
("the quality of a switch decreases as the threshold value [increases], but
not as fast as the number of switchings increases").
"""

from conftest import save_result

from repro.harness.report import format_series


def test_fig7c_benign_probability_vs_threshold(benchmark, detailed_grid):
    grid = detailed_grid
    series = benchmark.pedantic(
        lambda: {h: grid.series_benign_vs_threshold(h) for h in grid.heuristics},
        rounds=1, iterations=1,
    )
    print()
    for h, ys in series.items():
        print(format_series(f"P(benign)[{h}]", grid.thresholds, ys))
    save_result("F7c_benign_vs_threshold", {"thresholds": grid.thresholds, "series": series})

    for h, ys in series.items():
        judged = [y for y, s in zip(ys, grid.series_switches_vs_threshold(h)) if s > 0]
        assert all(0.0 <= y <= 1.0 for y in judged)
        if len(judged) >= 2:
            # Quality at the highest threshold must not exceed the best
            # low-threshold quality (the paper's downward trend).
            assert judged[-1] <= max(judged) + 1e-9


def test_fig7d_benign_probability_vs_type(benchmark, detailed_grid):
    grid = detailed_grid
    series = benchmark.pedantic(
        lambda: {m: grid.series_benign_vs_type(m) for m in grid.thresholds},
        rounds=1, iterations=1,
    )
    print()
    for m, ys in series.items():
        print(format_series(f"P(benign)[m={m:g}]", grid.heuristics, ys))
    save_result("F7d_benign_vs_type", {"heuristics": grid.heuristics, "series": {str(k): v for k, v in series.items()}})

    for m, ys in series.items():
        assert all(0.0 <= y <= 1.0 for y in ys)
