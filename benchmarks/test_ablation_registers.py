"""A5 — rename-register pressure ablation.

Tullsen'96 names the shared register file as a primary SMT scaling limit;
the paper's §1 lists register files among the resources whose scarcity
causes saturation. Sweeping the shared rename-pool size shows the model
reproduces that constraint: a starved pool throttles dispatch machine-wide,
and the effect saturates once the pool covers typical in-flight state.
"""

from conftest import QUICK, save_result

from repro import build_processor
from repro.harness.report import format_table
from repro.smt.config import SMTConfig


def run_variant(registers: int) -> dict:
    cfg = SMTConfig(rename_registers=registers)
    proc = build_processor(mix="mix05", config=cfg, seed=0,
                           quantum_cycles=QUICK.quantum_cycles)
    proc.run_quanta(QUICK.warmup_quanta)
    c0, y0 = proc.stats.committed, proc.now
    fails0 = proc.regs.alloc_failures
    proc.run_quanta(QUICK.quanta)
    return {
        "ipc": (proc.stats.committed - c0) / (proc.now - y0),
        "alloc_failures": proc.regs.alloc_failures - fails0,
    }


def test_register_pressure_ablation(benchmark):
    sizes = (48, 96, 200, 400)
    result = benchmark.pedantic(
        lambda: {n: run_variant(n) for n in sizes}, rounds=1, iterations=1
    )
    print()
    print(format_table(
        ["registers", "ipc", "alloc_failures"],
        [[n, v["ipc"], v["alloc_failures"]] for n, v in result.items()],
        title="A5: shared rename-register pool size (mix05)",
    ))
    save_result("A5_register_pressure", {str(k): v for k, v in result.items()})

    # Starving the pool must hurt substantially...
    assert result[48]["ipc"] < 0.8 * result[200]["ipc"]
    assert result[48]["alloc_failures"] > 0
    # ...monotonically improving with size...
    assert result[48]["ipc"] < result[96]["ipc"] <= result[200]["ipc"] * 1.02
    # ...and saturating once generous (Tullsen's diminishing-returns curve).
    assert abs(result[400]["ipc"] - result[200]["ipc"]) < 0.08 * result[200]["ipc"]
