"""S1 — thread-count scaling (the paper's §1 saturation motivation).

Reproduction target: aggregate throughput grows sub-linearly with the
number of hardware contexts, with clear saturation by 8 threads (speedup
over 2 threads well below 4x).
"""

from conftest import QUICK, save_result

from repro.harness.experiments import experiment_thread_scaling
from repro.harness.report import format_table


def test_thread_scaling(benchmark):
    result = benchmark.pedantic(
        lambda: experiment_thread_scaling(QUICK, mix="mix05"),
        rounds=1, iterations=1,
    )
    rows = [[r["threads"], r["icount_ipc"], r["adts_ipc"]] for r in result["rows"]]
    print()
    print(format_table(["threads", "icount_ipc", "adts_ipc"], rows,
                       title="S1: throughput vs thread count (mix05)"))
    save_result("S1_thread_scaling", result)

    ipcs = {r["threads"]: r["icount_ipc"] for r in result["rows"]}
    # More threads must help overall...
    assert ipcs[8] > ipcs[2]
    # ...but far sub-linearly: the saturation effect ADTS targets.
    assert ipcs[8] / ipcs[2] < 3.0
    # The marginal gain of the last two contexts is small.
    assert (ipcs[8] - ipcs[6]) < (ipcs[4] - ipcs[2]) + 0.25
