"""S6-2 — mixture-similarity effect.

Paper §6: "greater improvements can be achieved when more similar
applications are found in a mixture. With a mixture of various
applications, less improvement was achieved."
"""

from conftest import QUICK, save_result

from repro.harness.experiments import experiment_similarity


def test_similarity_effect(benchmark):
    result = benchmark.pedantic(
        lambda: experiment_similarity(QUICK), rounds=1, iterations=1
    )
    homog = result["homogeneous"]
    diverse = result["diverse"]
    print()
    print(f"homogeneous mixes {homog['mixes']}: mean ADTS improvement "
          f"{homog['mean_improvement']:+.2%} (similarity {homog['mean_similarity']:.2f})")
    print(f"diverse mixes {diverse['mixes']}: mean ADTS improvement "
          f"{diverse['mean_improvement']:+.2%} (similarity {diverse['mean_similarity']:.2f})")
    save_result("S6_2_similarity", result)

    # The similarity metric itself must separate the groups.
    assert homog["mean_similarity"] > diverse["mean_similarity"]
    # Shape: homogeneous mixes must not benefit *less* by more than noise.
    assert homog["mean_improvement"] >= diverse["mean_improvement"] - 0.05
