"""S3 — detector-thread feasibility (paper §3).

Reproduction targets: (1) the DT's work fits in otherwise-idle fetch slots
(its total instruction count is a tiny fraction of the machine's slot
budget); (2) charging the DT's cost barely moves throughput relative to a
zero-cost (instant) DT; (3) task latencies fit comfortably within a
scheduling quantum.
"""

from conftest import QUICK, save_result

from repro.harness.experiments import experiment_detector_overhead


def test_detector_thread_overhead(benchmark):
    result = benchmark.pedantic(
        lambda: experiment_detector_overhead(QUICK, mix="mix07"),
        rounds=1, iterations=1,
    )
    real = result["real_dt"]
    print()
    print(f"DT instructions executed: {real['dt_instructions']}")
    print(f"DT starved cycles: {real['dt_starved_cycles']}")
    print(f"DT mean task latency: {real['dt_mean_task_latency']:.0f} cycles")
    print(f"missed decisions: {real['missed_decisions']}")
    print(f"IPC real DT {real['ipc']:.3f} vs instant DT {result['instant_dt']['ipc']:.3f} "
          f"(overhead cost {result['dt_overhead_ipc_cost']:+.2%})")
    save_result("S3_detector_overhead", result)

    total_slots = QUICK.quantum_cycles * (QUICK.quanta + QUICK.warmup_quanta) * 8
    # (1) DT work is a negligible share of the slot budget.
    assert real["dt_instructions"] < 0.02 * total_slots
    # (3) decisions complete well within a quantum when they complete.
    if real["dt_mean_task_latency"]:
        assert real["dt_mean_task_latency"] < QUICK.quantum_cycles
    # (2) charging DT cost changes IPC by at most a few percent.
    assert abs(result["dt_overhead_ipc_cost"]) < 0.08
