"""A4 — threshold auto-tuning ablation (paper §4.3.2's proposed extension:
"the threshold values should be updated to reflect newly found
information").

Scenario: the DT ships with a badly stale IPC threshold (0.5 — far below
the machine's operating point, so low-throughput detection never fires).
The self-tuning kernel must recover detection capability online; a
correctly pre-calibrated fixed threshold is the reference.
"""

from conftest import QUICK, save_result

from repro import build_processor
from repro.core.adts import ADTSController
from repro.core.autotune import ThresholdAutoTuner
from repro.core.thresholds import ThresholdConfig
from repro.harness.report import format_table

QUANTA = 48


def run_variant(name: str) -> dict:
    if name == "stale":
        adts = ADTSController(heuristic="type3",
                              thresholds=ThresholdConfig(ipc_threshold=0.5))
    elif name == "calibrated":
        adts = ADTSController(heuristic="type3",
                              thresholds=ThresholdConfig(ipc_threshold=2.0))
    else:  # autotuned from the stale start
        tuner = ThresholdAutoTuner(
            initial=ThresholdConfig(ipc_threshold=0.5),
            ipc_quantile=0.35, update_interval=4,
        )
        adts = ADTSController(heuristic="type3",
                              thresholds=ThresholdConfig(ipc_threshold=0.5),
                              autotune=tuner)
    proc = build_processor(mix="mix05", seed=0, hook=adts, quantum_cycles=1024)
    proc.run_quanta(QUANTA)
    out = {
        "ipc": proc.stats.ipc,
        "detections": adts.low_throughput_quanta,
        "switches": adts.num_switches,
    }
    if name == "autotuned":
        out["final_threshold"] = adts.thresholds.ipc_threshold
    return out


def test_threshold_autotuning_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: {n: run_variant(n) for n in ("stale", "calibrated", "autotuned")},
        rounds=1, iterations=1,
    )
    print()
    print(format_table(
        ["variant", "ipc", "detections", "switches"],
        [[n, v["ipc"], v["detections"], v["switches"]] for n, v in result.items()],
        title="A4: threshold auto-tuning from a stale starting point (mix05)",
    ))
    print(f"autotuned final IPC threshold: {result['autotuned']['final_threshold']:.2f} "
          f"(started at 0.50; calibrated reference 2.00)")
    save_result("A4_autotune", result)

    # The stale threshold detects nothing; the tuner must recover detection.
    assert result["stale"]["detections"] == 0
    assert result["autotuned"]["detections"] > 0
    # And converge into a sensible band around the calibrated value.
    assert 1.2 < result["autotuned"]["final_threshold"] < 3.0
    # Recovering detection must not cost meaningful throughput.
    assert result["autotuned"]["ipc"] > 0.93 * result["stale"]["ipc"]
