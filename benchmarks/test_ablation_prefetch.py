"""A6 — L2 prefetching ablation (extension beyond the paper's baseline).

The paper's SimpleScalar-era machine has no prefetcher; streaming FP
workloads therefore pay a compulsory miss per line. Turning on next-line /
stride prefetching quantifies how much of the memory-bound mixes' pain is
stream-shaped — and whether the paper-era policy conclusions survive a
prefetching memory system (they should: prefetching helps the streaming
mixes most, and leaves pointer-chasing mcf-class behaviour intact).
"""

from conftest import QUICK, save_result

from repro import build_processor
from repro.harness.report import format_table
from repro.smt.config import SMTConfig


def run_variant(mix: str, prefetcher: str) -> dict:
    cfg = SMTConfig(prefetcher=prefetcher)
    proc = build_processor(mix=mix, config=cfg, seed=0,
                           quantum_cycles=QUICK.quantum_cycles)
    proc.run_quanta(QUICK.warmup_quanta)
    c0, y0 = proc.stats.committed, proc.now
    proc.run_quanta(QUICK.quanta)
    return {
        "ipc": (proc.stats.committed - c0) / (proc.now - y0),
        "l2_miss_rate": proc.hierarchy.l2.miss_rate,
        "prefetch_fills": proc.hierarchy.prefetch_fills,
    }


def test_prefetch_ablation(benchmark):
    mixes = ("mix04", "mix10")  # streaming-FP vs pointer-chasing
    result = benchmark.pedantic(
        lambda: {
            (mix, p): run_variant(mix, p)
            for mix in mixes for p in ("none", "nextline", "stride")
        },
        rounds=1, iterations=1,
    )
    print()
    print(format_table(
        ["mix", "prefetcher", "ipc", "l2_miss", "fills"],
        [[m, p, v["ipc"], v["l2_miss_rate"], v["prefetch_fills"]]
         for (m, p), v in result.items()],
        title="A6: L2 prefetching (streaming mix04 vs pointer-chasing mix10)",
    ))
    save_result("A6_prefetch", {f"{m}.{p}": v for (m, p), v in result.items()})

    # Streaming mix: stride prefetching must help IPC and cut L2 misses.
    assert result[("mix04", "stride")]["ipc"] > result[("mix04", "none")]["ipc"]
    assert (result[("mix04", "stride")]["l2_miss_rate"]
            < result[("mix04", "none")]["l2_miss_rate"])
    # Pointer chasing: prefetching must not be a large win (mcf-class
    # behaviour has no streams to exploit).
    gain_mcf = (result[("mix10", "stride")]["ipc"]
                / result[("mix10", "none")]["ipc"] - 1.0)
    gain_stream = (result[("mix04", "stride")]["ipc"]
                   / result[("mix04", "none")]["ipc"] - 1.0)
    assert gain_stream > gain_mcf - 0.02
    # Prefetchers actually issued work.
    assert result[("mix04", "stride")]["prefetch_fills"] > 0
