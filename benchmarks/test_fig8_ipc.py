"""F8a–d — Figure 8: aggregate IPC vs. IPC threshold and heuristic type.

Reproduction targets: (a/c) IPC as a function of the threshold has an
interior optimum (the paper's best: threshold 2); (b/d) the best cell's
IPC does not fall below the fixed-ICOUNT baseline by more than noise, and
adaptive scheduling recovers throughput on low-threshold settings.

Magnitude note (see EXPERIMENTS.md): the paper reports up to ~25–30%
improvement at (threshold 2, Type 3); the detailed simulator reproduces the
*shape* (interior optimum, type orderings) with attenuated magnitude.
"""

from conftest import QUICK, save_result

from repro.harness.experiments import experiment_fig8
from repro.harness.report import format_series
from repro.harness.runner import run_mix_average


def test_fig8_ipc_grid(benchmark, detailed_grid):
    grid = detailed_grid
    baseline = run_mix_average(grid.mixes, QUICK.base_run())["mean_ipc"]
    result = benchmark.pedantic(
        lambda: experiment_fig8(grid, baseline), rounds=1, iterations=1
    )
    print()
    print(f"fixed ICOUNT baseline: {baseline:.3f}")
    for h in grid.heuristics:
        print(format_series(f"IPC[{h}]", grid.thresholds, result["ipc_vs_threshold"][h]))
    for m in grid.thresholds:
        print(format_series(f"IPC[m={m:g}]", grid.heuristics, result["ipc_vs_type"][m]))
    best = result["best_cell"]
    print(f"best cell: threshold {best['threshold']:g}, {best['heuristic']} "
          f"-> {best['ipc']:.3f} ({result['best_improvement_over_icount']:+.1%} vs ICOUNT)")
    save_result("F8_ipc_grid", {
        "thresholds": grid.thresholds,
        "heuristics": grid.heuristics,
        "ipc_vs_threshold": result["ipc_vs_threshold"],
        "ipc_vs_type": {str(k): v for k, v in result["ipc_vs_type"].items()},
        "best_cell": best,
        "icount_baseline": baseline,
        "best_improvement_over_icount": result["best_improvement_over_icount"],
    })

    assert baseline > 0.5
    # Every cell within sanity range of the baseline.
    for h in grid.heuristics:
        for ipc in result["ipc_vs_threshold"][h]:
            assert 0.4 * baseline < ipc < 1.6 * baseline
    # The best adaptive cell must be competitive with fixed ICOUNT
    # (the paper finds it strictly better; we accept a small tolerance —
    # see the magnitude note above).
    assert result["best_improvement_over_icount"] > -0.05
    # The threshold axis must matter: spread across thresholds for the
    # condition-free Type 1 exceeds run noise.
    t1 = result["ipc_vs_threshold"]["type1"]
    assert max(t1) - min(t1) > 0.0
