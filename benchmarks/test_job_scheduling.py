"""S2 — job-scheduler symbiosis (paper §3).

The DT pre-identifies clogging threads in the thread control flags so the
job scheduler can evict them "without going through the possibly long
process of identifying them for itself". This bench time-shares a
12-job pool (including pathological memory-bound jobs) over 8 contexts and
compares flag-guided eviction against oblivious round-robin eviction
(the Parekh et al. baseline the paper discusses).

Reproduction target: guided eviction is at least competitive with
oblivious, and the DT's flags actually drive evictions.
"""

from conftest import QUICK, save_result

from repro import build_processor
from repro.core.adts import ADTSController
from repro.core.jobsched import JobPool, JobSchedulerHook
from repro.core.thresholds import ThresholdConfig
from repro.harness.report import format_table

POOL = [
    "gzip", "eon", "vortex", "mesa", "crafty", "gap", "bzip2", "gcc",
    # The troublemakers that arrive from the waiting queue:
    "mcf", "art", "equake", "swim",
]


def run_mode(mode: str) -> dict:
    pool = JobPool(POOL, seed=0)
    hook = JobSchedulerHook(
        pool,
        mode=mode,
        interval_quanta=4,
        swaps_per_interval=2,
        # Threshold above this pool's typical IPC so low-throughput
        # detection (and with it clogging identification) fires regularly —
        # the job-scheduler handshake is what this experiment exercises.
        adts=ADTSController(heuristic="type3",
                            thresholds=ThresholdConfig(ipc_threshold=2.6)),
    )
    proc = build_processor(mix=POOL[:8], seed=0, hook=hook,
                           quantum_cycles=QUICK.quantum_cycles)
    proc.run_quanta(QUICK.warmup_quanta)
    c0, y0 = proc.stats.committed, proc.now
    proc.run_quanta(QUICK.quanta)
    return {
        "ipc": (proc.stats.committed - c0) / (proc.now - y0),
        "swaps": hook.swaps,
        "guided_evictions": hook.guided_evictions,
    }


def test_job_scheduler_symbiosis(benchmark):
    result = benchmark.pedantic(
        lambda: {m: run_mode(m) for m in ("guided", "oblivious")},
        rounds=1, iterations=1,
    )
    print()
    print(format_table(
        ["mode", "ipc", "swaps", "guided_evictions"],
        [[m, v["ipc"], v["swaps"], v["guided_evictions"]] for m, v in result.items()],
        title="S2: flag-guided vs oblivious job eviction (12 jobs / 8 contexts)",
    ))
    save_result("S2_job_scheduling", result)

    guided, oblivious = result["guided"], result["oblivious"]
    assert guided["swaps"] > 0 and oblivious["swaps"] > 0
    # Guided eviction must be competitive with oblivious.
    assert guided["ipc"] > 0.90 * oblivious["ipc"]
