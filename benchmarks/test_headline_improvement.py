"""S6-1 — headline claim: ADTS at (threshold 2, Type 3) vs fixed ICOUNT.

Paper: "the best performance is reached when the threshold value is 2 and
Type 3 heuristic is used. The maximum performance improvement over [ICOUNT]
is about 30%" (§6) / "performance could be improved by as much as 25%"
(abstract). See EXPERIMENTS.md for the magnitude discussion; the assertion
here requires ADTS to be within noise of fixed ICOUNT or better.
"""

from conftest import QUICK, save_result

from repro.harness.experiments import experiment_headline
from repro.harness.report import format_table


def test_headline_adts_vs_fixed_icount(benchmark):
    result = benchmark.pedantic(
        lambda: experiment_headline(QUICK, quick=True, threshold=2.0, heuristic="type3"),
        rounds=1, iterations=1,
    )
    rows = [
        [mix, v["icount_ipc"], v["adts_ipc"], f"{v['improvement']:+.1%}", v["switches"]]
        for mix, v in result["per_mix"].items()
    ]
    print()
    print(format_table(
        ["mix", "icount_ipc", "adts_ipc", "improvement", "switches"], rows,
        title="S6-1: ADTS (thr=2, Type 3) vs fixed ICOUNT",
    ))
    print(f"mean improvement: {result['mean_improvement']:+.2%}")
    save_result("S6_1_headline", result)

    assert result["mean_icount_ipc"] > 0.5
    # Shape: adaptive scheduling must be competitive with the best fixed
    # policy (paper: strictly better; detailed-sim magnitude attenuates).
    assert result["mean_improvement"] > -0.06
    # ADTS must actually be *doing* something on at least one mix.
    assert any(v["switches"] > 0 for v in result["per_mix"].values())
