"""F7a/F7b — Figure 7(a)(b): number of policy switches vs. IPC threshold
and vs. heuristic type.

Reproduction target: switch counts grow with the threshold value for every
heuristic type and saturate once the threshold exceeds the IPC range
(paper §6: "As the threshold value increases, more switchings incur for all
types of heuristics").
"""

from conftest import save_result

from repro.harness.report import format_series


def test_fig7a_switches_vs_threshold(benchmark, detailed_grid):
    grid = detailed_grid
    series = benchmark.pedantic(
        lambda: {h: grid.series_switches_vs_threshold(h) for h in grid.heuristics},
        rounds=1, iterations=1,
    )
    print()
    for h, ys in series.items():
        print(format_series(f"switches[{h}]", grid.thresholds, ys))
    save_result("F7a_switches_vs_threshold", {"thresholds": grid.thresholds, "series": series})

    for h, ys in series.items():
        assert ys[-1] >= ys[0], f"{h}: switches must not shrink with the threshold"
    # At least the condition-free types must show clear growth.
    assert series["type1"][-1] > series["type1"][0]
    assert series["type2"][-1] > series["type2"][0]


def test_fig7b_switches_vs_type(benchmark, detailed_grid):
    grid = detailed_grid
    series = benchmark.pedantic(
        lambda: {m: grid.series_switches_vs_type(m) for m in grid.thresholds},
        rounds=1, iterations=1,
    )
    print()
    for m, ys in series.items():
        print(format_series(f"switches[m={m:g}]", grid.heuristics, ys))
    save_result("F7b_switches_vs_type", {"heuristics": grid.heuristics, "series": {str(k): v for k, v in series.items()}})

    # The gradient hold (Type 3') suppresses switches relative to Type 3 at
    # every threshold (§4.3.3 feature 1).
    i3 = grid.heuristics.index("type3")
    i3g = grid.heuristics.index("type3g")
    for m in grid.thresholds:
        assert series[m][i3g] <= series[m][i3]
