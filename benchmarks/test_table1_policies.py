"""T1 — Table 1: the ten fixed fetch policies under fixed scheduling.

Reproduction target (paper §5 + Tullsen'96 provenance): ICOUNT is the best
fixed policy on average and round-robin the worst; the event-count policies
fall in between.
"""

from conftest import QUICK, save_result

from repro.harness.experiments import experiment_table1
from repro.harness.report import format_table


def test_table1_fixed_policies(benchmark):
    result = benchmark.pedantic(
        lambda: experiment_table1(QUICK, quick=True), rounds=1, iterations=1
    )
    rows = [[r["policy"], r["mean_ipc"]] for r in result["rows"]]
    print()
    print(format_table(["policy", "mean_ipc"], rows,
                       title="Table 1 reproduction (mean IPC over quick mixes)"))
    save_result("T1_table1", result)

    means = result["mean_ipc"]
    # Shape assertions are scoped to the policies with Tullsen'96
    # provenance — that is where the paper's "ICOUNT works best on the
    # average" claim comes from. The paper's own additions (LDCOUNT,
    # MEMCOUNT, ...) were never compared against ICOUNT in prior work; on
    # this memory-dominated substrate LDCOUNT/MEMCOUNT can edge ICOUNT out
    # (reported, not asserted — see EXPERIMENTS.md).
    tullsen = {p: means[p] for p in ("icount", "brcount", "l1dmisscount", "rr")}
    assert tullsen["icount"] == max(tullsen.values()), \
        "ICOUNT must be the best Tullsen-provenance policy"
    assert tullsen["rr"] == min(tullsen.values()), \
        "round-robin must be the worst Tullsen-provenance policy"
    # ICOUNT's margin over RR is the headline fixed-policy gap.
    assert means["icount"] / means["rr"] > 1.05
