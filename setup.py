"""Setuptools build script.

Classic setup.py (rather than pyproject metadata) on purpose: PEP 517
build isolation downloads setuptools/wheel at install time, which breaks
`pip install -e .` in offline environments; the legacy path works anywhere.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Dynamic Scheduling Issues in SMT Architectures' "
        "(IPPS 2003): ADTS adaptive fetch scheduling on an SMT pipeline simulator"
    ),
    long_description=open("README.md", encoding="utf-8").read(),
    long_description_content_type="text/markdown",
    license="MIT",
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={"console_scripts": ["repro-smt = repro.harness.cli:main"]},
    classifiers=[
        "Development Status :: 5 - Production/Stable",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: System :: Hardware",
        "Topic :: Scientific/Engineering",
    ],
)
